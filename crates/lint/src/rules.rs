//! The project-specific rules, run over the significant-token stream
//! of one file.
//!
//! Every rule is a local pattern over [`lexer`] tokens — no type
//! information, no macro expansion. That keeps the checker fast and
//! zero-dependency, at the cost of being a *lint*, not a proof: the
//! escape hatch (`// lint: allow(<rule>)`) exists precisely because
//! token-level analysis sometimes needs a human override. See
//! DESIGN.md §9 for the rule table and escape policy.

use crate::lexer::{Token, TokenKind};
use crate::Rule;

/// A rule hit before escape filtering: line and message.
pub(crate) struct Hit {
    pub line: u32,
    pub rule: Rule,
    pub message: String,
}

/// The lexed file plus the derived views every rule needs.
pub(crate) struct FileView<'a> {
    /// The full lossless token stream.
    pub tokens: Vec<Token<'a>>,
    /// Indices into `tokens` of the non-trivia tokens, in order.
    pub sig: Vec<usize>,
    /// Half-open ranges over `sig` positions that sit under an exact
    /// `#[cfg(test)]` attribute (the attribute itself plus the item it
    /// gates) or after `#![cfg(test)]`. Rules skip these.
    inactive: Vec<(usize, usize)>,
}

impl<'a> FileView<'a> {
    pub fn new(src: &'a str) -> FileView<'a> {
        let tokens = crate::lexer::lex(src);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_trivia())
            .map(|(i, _)| i)
            .collect();
        let mut view = FileView {
            tokens,
            sig,
            inactive: Vec::new(),
        };
        view.inactive = view.find_cfg_test_ranges();
        view
    }

    /// The token at sig position `i`, if any.
    fn tok(&self, i: usize) -> Option<&Token<'a>> {
        self.sig.get(i).map(|&ti| &self.tokens[ti])
    }

    /// The text at sig position `i`, or "".
    pub fn text(&self, i: usize) -> &'a str {
        self.tok(i).map(|t| t.text).unwrap_or("")
    }

    /// The kind at sig position `i`.
    fn kind(&self, i: usize) -> Option<TokenKind> {
        self.tok(i).map(|t| t.kind)
    }

    /// The kind at sig position `i` (public alias for the parser).
    pub fn kind_at(&self, i: usize) -> Option<TokenKind> {
        self.kind(i)
    }

    /// 1-based line of sig position `i` (0 when out of range).
    pub fn line(&self, i: usize) -> u32 {
        self.tok(i).map(|t| t.line).unwrap_or(0)
    }

    pub fn len(&self) -> usize {
        self.sig.len()
    }

    /// True when sig position `i` is inside a `#[cfg(test)]` region.
    pub fn is_test_code(&self, i: usize) -> bool {
        self.inactive.iter().any(|&(a, b)| a <= i && i < b)
    }

    /// Does the exact token sequence `pat` start at sig position `i`?
    pub fn matches(&self, i: usize, pat: &[&str]) -> bool {
        pat.iter()
            .enumerate()
            .all(|(k, want)| self.text(i + k) == *want)
    }

    /// Find `#[cfg(test)]`-gated regions: the attribute plus the item
    /// it introduces (up to a top-level `;`, or through the matched
    /// `{...}` block). Only the exact form is recognized; conditional
    /// spellings like `#[cfg(all(test, ...))]` are not test-gated for
    /// the linter's purposes.
    fn find_cfg_test_ranges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.sig.len() {
            if self.matches(i, &["#", "!", "[", "cfg", "(", "test", ")", "]"]) {
                // Inner attribute: the whole rest of the file is a test
                // module.
                out.push((i, self.sig.len()));
                break;
            }
            if self.matches(i, &["#", "[", "cfg", "(", "test", ")", "]"]) {
                let end = self.skip_item(i + 7);
                out.push((i, end));
                i = end;
                continue;
            }
            i += 1;
        }
        out
    }

    /// From sig position `i` (just past an attribute), skip any further
    /// attributes and then one item: to a top-level `;`, or through the
    /// first `{`'s matched `}`. Returns the sig position just past it.
    fn skip_item(&self, mut i: usize) -> usize {
        let mut depth = 0i64; // (), []
        while i < self.sig.len() {
            match self.text(i) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" if depth == 0 => return i + 1,
                "{" if depth == 0 => return self.skip_braces(i),
                _ => {}
            }
            i += 1;
        }
        i
    }

    /// From sig position `i` (an opening `{`), return the position just
    /// past its matching `}` (or EOF).
    pub fn skip_braces(&self, mut i: usize) -> usize {
        debug_assert_eq!(self.text(i), "{");
        let mut depth = 0i64;
        while i < self.sig.len() {
            match self.text(i) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        i
    }
}

/// Run `rule` over the file, appending hits.
pub(crate) fn check(rule: Rule, view: &FileView<'_>, hits: &mut Vec<Hit>) {
    match rule {
        Rule::NoUnwrap => no_unwrap(view, hits),
        Rule::OrderedOutput => ordered_output(view, hits),
        Rule::NoWallclock => no_wallclock(view, hits),
        Rule::SeededRngOnly => seeded_rng_only(view, hits),
        Rule::LocatedErrors => located_errors(view, hits),
        Rule::NoUnboundedCollect => no_unbounded_collect(view, hits),
        Rule::NoStringKeyedHotMap => no_string_keyed_hot_map(view, hits),
        Rule::NoDeadlineFreeIo => no_deadline_free_io(view, hits),
        Rule::LockAcrossIo => lock_across_io(view, hits),
        // Workspace rules: run over the call graph in `lib.rs`, not
        // per file.
        Rule::NoPanicInRequestPath | Rule::WallclockTaint => {}
        // Emitted during escape parsing, never scanned for.
        Rule::BadEscape => {}
    }
}

/// `no-unwrap`: `.unwrap()`, `.expect(...)`, `panic!`, `todo!`,
/// `unimplemented!` are banned in format/archive/ingest modules —
/// parsers must return located errors, not crash the pipeline.
fn no_unwrap(view: &FileView<'_>, hits: &mut Vec<Hit>) {
    for i in 0..view.len() {
        if view.is_test_code(i) || view.kind(i) != Some(TokenKind::Ident) {
            continue;
        }
        match view.text(i) {
            m @ ("unwrap" | "expect")
                if i > 0 && view.text(i - 1) == "." && view.text(i + 1) == "(" =>
            {
                hits.push(Hit {
                    line: view.line(i),
                    rule: Rule::NoUnwrap,
                    message: format!(
                        "`.{m}()` in a format/archive/ingest module — return a located error instead"
                    ),
                });
            }
            m @ ("panic" | "todo" | "unimplemented") if view.text(i + 1) == "!" => {
                hits.push(Hit {
                    line: view.line(i),
                    rule: Rule::NoUnwrap,
                    message: format!(
                        "`{m}!` in a format/archive/ingest module — return a located error instead"
                    ),
                });
            }
            _ => {}
        }
    }
}

/// `ordered-output`: `HashMap`/`HashSet` are banned in any module that
/// writes archives, reports, or trace exports. Their iteration order is
/// seeded per-process, so anything they feed into an output file can
/// silently stop being byte-stable. Use `BTreeMap`/`BTreeSet` or sort a
/// `Vec` explicitly.
fn ordered_output(view: &FileView<'_>, hits: &mut Vec<Hit>) {
    for i in 0..view.len() {
        if view.is_test_code(i) || view.kind(i) != Some(TokenKind::Ident) {
            continue;
        }
        let name = view.text(i);
        if name == "HashMap" || name == "HashSet" {
            hits.push(Hit {
                line: view.line(i),
                rule: Rule::OrderedOutput,
                message: format!(
                    "`{name}` in an output-writing module — iteration order is not deterministic; \
                     use BTreeMap/BTreeSet or a sorted Vec"
                ),
            });
        }
    }
}

/// `no-wallclock`: `Instant::now`/`SystemTime::now` only inside the
/// `obs` crate. Everything else must take time through `obs` (spans,
/// `Stopwatch`) so output-affecting code cannot branch on the clock.
fn no_wallclock(view: &FileView<'_>, hits: &mut Vec<Hit>) {
    for i in 0..view.len() {
        if view.is_test_code(i) {
            continue;
        }
        let name = view.text(i);
        if (name == "Instant" || name == "SystemTime") && view.matches(i + 1, &[":", ":", "now"]) {
            hits.push(Hit {
                line: view.line(i),
                rule: Rule::NoWallclock,
                message: format!(
                    "`{name}::now()` outside obs — go through droplens_obs (Span/Stopwatch) instead"
                ),
            });
        }
    }
}

/// `seeded-rng-only`: entropy-seeded RNG construction is banned
/// everywhere (the vendored `rand` test shims are outside the lint
/// walk). Every random stream must derive from an explicit `u64` seed
/// or the run stops being reproducible.
fn seeded_rng_only(view: &FileView<'_>, hits: &mut Vec<Hit>) {
    const ENTROPY: [&str; 4] = ["thread_rng", "from_entropy", "from_os_rng", "OsRng"];
    for i in 0..view.len() {
        if view.is_test_code(i) || view.kind(i) != Some(TokenKind::Ident) {
            continue;
        }
        let name = view.text(i);
        if ENTROPY.contains(&name) {
            hits.push(Hit {
                line: view.line(i),
                rule: Rule::SeededRngOnly,
                message: format!(
                    "`{name}` constructs an entropy-seeded RNG — derive every RNG from an explicit seed"
                ),
            });
        } else if name == "rand" && view.matches(i + 1, &[":", ":", "random"]) {
            hits.push(Hit {
                line: view.line(i),
                rule: Rule::SeededRngOnly,
                message: "`rand::random` draws from the thread RNG — derive every RNG from an \
                          explicit seed"
                    .to_owned(),
            });
        }
    }
}

/// `no-unbounded-collect`: `.collect` (plain or turbofish) on a
/// format/archive hot path materializes an intermediate collection
/// whose size scales with the input. The size-of tests pin per-record
/// costs; this rule makes whole-archive materialization a conscious
/// decision — every legitimate site carries a
/// `// lint: allow(no-unbounded-collect)` escape saying why the bound
/// is acceptable.
fn no_unbounded_collect(view: &FileView<'_>, hits: &mut Vec<Hit>) {
    for i in 0..view.len() {
        if view.is_test_code(i) || view.kind(i) != Some(TokenKind::Ident) {
            continue;
        }
        if view.text(i) == "collect"
            && i > 0
            && view.text(i - 1) == "."
            && (view.text(i + 1) == "(" || view.matches(i + 1, &[":", ":"]))
        {
            hits.push(Hit {
                line: view.line(i),
                rule: Rule::NoUnboundedCollect,
                message: "`.collect` on a format/archive hot path materializes an input-sized \
                          collection — stream instead, or escape with a comment saying why the \
                          size is bounded"
                    .to_owned(),
            });
        }
    }
}

/// `no-string-keyed-hot-map`: a `HashMap<String, _>` or
/// `BTreeMap<String, _>` on a format/archive hot path hashes (or
/// compares) and clones the full string once per record. The interners
/// exist exactly for this — add the string to a `StrTable` /
/// `StringInterner` once and key the map by the `u32` id. Reference
/// keys (`&str`, `&AsPath`, ids) do not trip the rule.
fn no_string_keyed_hot_map(view: &FileView<'_>, hits: &mut Vec<Hit>) {
    for i in 0..view.len() {
        if view.is_test_code(i) || view.kind(i) != Some(TokenKind::Ident) {
            continue;
        }
        let name = view.text(i);
        if (name == "HashMap" || name == "BTreeMap")
            && view.text(i + 1) == "<"
            && view.text(i + 2) == "String"
            && (view.text(i + 3) == "," || view.text(i + 3) == ">")
        {
            hits.push(Hit {
                line: view.line(i),
                rule: Rule::NoStringKeyedHotMap,
                message: format!(
                    "`{name}<String, _>` on a format/archive hot path — intern the keys \
                     (StrTable/StringInterner) and key by u32 id instead"
                ),
            });
        }
    }
}

/// `no-deadline-free-io`: serve-path sockets must always carry
/// deadlines, or a wedged peer holds a worker (or the whole drain)
/// hostage forever. Two checks:
///
/// * `TcpStream::connect(` is banned outright — it has no timeout
///   variant in that spelling; use `TcpStream::connect_timeout` or
///   `DeadlineStream::connect`.
/// * Any function that touches `TcpStream`/`TcpListener` and performs
///   raw IO (`.read(`, `.read_exact(`, `.read_to_end(`, `.write(`,
///   `.write_all(`) must configure **both** `set_read_timeout` and
///   `set_write_timeout` in the same function, or route the socket
///   through `DeadlineStream` (whose constructor sets both). Each
///   unguarded IO call is a separate hit.
///
/// Token-level, like every rule here: a function that configures
/// timeouts on one socket and does raw IO on another will pass, and a
/// helper that receives an already-deadlined socket will be flagged —
/// that second case is what `// lint: allow(no-deadline-free-io)` is
/// for (or better: pass the `DeadlineStream` wrapper, which documents
/// the invariant in the type).
fn no_deadline_free_io(view: &FileView<'_>, hits: &mut Vec<Hit>) {
    // Check A: deadline-free connect.
    for i in 0..view.len() {
        if view.is_test_code(i) {
            continue;
        }
        if view.matches(i, &["TcpStream", ":", ":", "connect", "("]) {
            hits.push(Hit {
                line: view.line(i),
                rule: Rule::NoDeadlineFreeIo,
                message: "`TcpStream::connect` has no deadline — use \
                          `TcpStream::connect_timeout` or `DeadlineStream::connect`"
                    .to_owned(),
            });
        }
    }

    // Check B, pass 1: function spans — the `fn` token through the
    // body's closing brace, so timeouts configured anywhere in the
    // function (and socket types named in the signature) both count.
    let mut spans: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < view.len() {
        if view.text(i) == "fn"
            && view.kind(i + 1) == Some(TokenKind::Ident)
            && !view.is_test_code(i)
        {
            let mut j = i + 2;
            let mut depth = 0i64;
            while j < view.len() {
                match view.text(j) {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    ";" if depth == 0 => break,
                    "{" if depth == 0 => {
                        spans.push((i, view.skip_braces(j)));
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            // Keep scanning inside the body: nested fns and closures
            // passed to `thread::spawn` get their own spans too.
            i += 2;
            continue;
        }
        i += 1;
    }

    let innermost = |p: usize| -> Option<(usize, usize)> {
        spans
            .iter()
            .filter(|s| s.0 <= p && p < s.1)
            .min_by_key(|s| s.1 - s.0)
            .copied()
    };
    let mentions = |span: (usize, usize), name: &str| -> bool {
        (span.0..span.1).any(|p| view.text(p) == name)
    };

    // Check B, pass 2: unguarded IO calls in socket-touching functions.
    const IO_CALLS: [&str; 5] = ["read", "read_exact", "read_to_end", "write", "write_all"];
    for p in 0..view.len() {
        if view.is_test_code(p) || view.kind(p) != Some(TokenKind::Ident) {
            continue;
        }
        let name = view.text(p);
        if !IO_CALLS.contains(&name) || p == 0 || view.text(p - 1) != "." || view.text(p + 1) != "("
        {
            continue;
        }
        let Some(span) = innermost(p) else {
            continue; // not inside any fn: macro plumbing, skip
        };
        if !mentions(span, "TcpStream") && !mentions(span, "TcpListener") {
            continue; // IO on something that is not a raw socket
        }
        let guarded = mentions(span, "DeadlineStream")
            || (mentions(span, "set_read_timeout") && mentions(span, "set_write_timeout"));
        if !guarded {
            hits.push(Hit {
                line: view.line(p),
                rule: Rule::NoDeadlineFreeIo,
                message: format!(
                    "`.{name}(` in a socket-touching function with no configured deadline — set \
                     both `set_read_timeout` and `set_write_timeout` first, or wrap the socket \
                     in `DeadlineStream`"
                ),
            });
        }
    }
}

/// `lock-across-io`: a `Mutex`/`RwLock` guard held across a blocking
/// socket read/write serializes the serve path — every other worker
/// that needs the lock now waits on a peer's network latency. The rule
/// tracks `let`-bound guards from `.lock(`/`.read(`/`.write(`-style
/// lock acquisitions (`let g = m.lock()...`, `let Ok(g) = m.lock()
/// else ...`) inside socket-touching functions and fires on each raw
/// IO call made while a guard is still live. A guard dies at its
/// block's closing brace or at an explicit `drop(g)` — the fix is
/// almost always "copy what you need out of the lock, then do IO".
///
/// Token-level approximations: only `let`-bound guards are tracked
/// (a temporary like `m.lock().push(x)` is dropped at the `;` and
/// cannot span IO), and a guard smuggled through a helper call is
/// invisible — escape with `// lint: allow(lock-across-io)` where the
/// rule is wrong.
fn lock_across_io(view: &FileView<'_>, hits: &mut Vec<Hit>) {
    const IO_CALLS: [&str; 5] = ["read", "read_exact", "read_to_end", "write", "write_all"];
    // Function spans, same pass as no-deadline-free-io.
    let mut spans: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < view.len() {
        if view.text(i) == "fn"
            && view.kind(i + 1) == Some(TokenKind::Ident)
            && !view.is_test_code(i)
        {
            let mut j = i + 2;
            let mut depth = 0i64;
            while j < view.len() {
                match view.text(j) {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    ";" if depth == 0 => break,
                    "{" if depth == 0 => {
                        spans.push((i, view.skip_braces(j)));
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            i += 2;
            continue;
        }
        i += 1;
    }
    let mentions = |span: (usize, usize), name: &str| -> bool {
        (span.0..span.1).any(|p| view.text(p) == name)
    };

    for &span in &spans {
        if !mentions(span, "TcpStream")
            && !mentions(span, "TcpListener")
            && !mentions(span, "DeadlineStream")
        {
            continue;
        }
        // Live guards: (name, brace depth at the binding).
        let mut guards: Vec<(String, i64)> = Vec::new();
        let mut depth = 0i64;
        let mut p = span.0;
        while p < span.1 {
            // Skip nested fns entirely — they run on their own stack
            // of guards (and get their own span).
            if p != span.0 && view.text(p) == "fn" && view.kind(p + 1) == Some(TokenKind::Ident) {
                if let Some(&inner) = spans.iter().find(|s| s.0 == p) {
                    p = inner.1;
                    continue;
                }
            }
            match view.text(p) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    guards.retain(|&(_, d)| d <= depth);
                }
                "lock" if p > 0 && view.text(p - 1) == "." && view.text(p + 1) == "(" => {
                    if let Some(name) = let_bound_name(view, span.0, p) {
                        guards.push((name, depth));
                    }
                }
                "drop" if view.text(p + 1) == "(" => {
                    let dropped = view.text(p + 2);
                    guards.retain(|(n, _)| n != dropped);
                }
                name if IO_CALLS.contains(&name)
                    && p > 0
                    && view.text(p - 1) == "."
                    && view.text(p + 1) == "("
                    && !guards.is_empty() =>
                {
                    let held: Vec<&str> = guards.iter().map(|(n, _)| n.as_str()).collect();
                    hits.push(Hit {
                        line: view.line(p),
                        rule: Rule::LockAcrossIo,
                        message: format!(
                            "blocking socket `.{name}(` while lock guard{} `{}` {} live — drop \
                             the guard before IO or every lock waiter inherits this peer's latency",
                            if held.len() == 1 { "" } else { "s" },
                            held.join("`, `"),
                            if held.len() == 1 { "is" } else { "are" },
                        ),
                    });
                }
                _ => {}
            }
            p += 1;
        }
    }
}

/// For a `.lock(` at sig position `p`, walk back to the statement's
/// `let` (stopping at `;`/`{`/`}` or the span start) and return the
/// bound name: `let g = ...`, `let mut g = ...`, or the ident inside
/// `let Ok(g)` / `let Some(g)`. `None` when the lock result is a
/// temporary or fed through `match`/`?`.
fn let_bound_name(view: &FileView<'_>, span_start: usize, p: usize) -> Option<String> {
    let mut q = p;
    while q > span_start {
        q -= 1;
        match view.text(q) {
            ";" | "{" | "}" => return None,
            "let" => {
                let mut n = q + 1;
                if view.text(n) == "mut" {
                    n += 1;
                }
                if matches!(view.text(n), "Ok" | "Some") && view.text(n + 1) == "(" {
                    n += 2;
                    if view.text(n) == "mut" {
                        n += 1;
                    }
                }
                if view.kind_at(n) == Some(TokenKind::Ident) && view.text(n) != "_" {
                    return Some(view.text(n).to_owned());
                }
                return None;
            }
            _ => {}
        }
    }
    None
}

/// One function definition found in the file, for `located-errors`.
struct FnDef<'a> {
    name: &'a str,
    /// Sig-position range of the body, half-open (`{` .. past `}`).
    body: (usize, usize),
    /// Sig positions of `ParseError::new` constructions in the body.
    constructions: Vec<usize>,
    /// Whether the body contains `.with_location(`.
    has_with_location: bool,
    /// Indices (into the fn table) of functions this one calls.
    calls: Vec<usize>,
    /// Indices of functions that call this one.
    callers: Vec<usize>,
}

/// `located-errors`: every `ParseError::new(...)` in a parser module
/// must end up located. A construction passes when the function it sits
/// in attaches `.with_location(...)` somewhere, or when every intra-file
/// caller of that function (transitively) does. This matches the parser
/// idiom where line-level helpers return bare errors and the archive
/// loop stamps file:line on the way out.
fn located_errors(view: &FileView<'_>, hits: &mut Vec<Hit>) {
    // Pass 1: find the functions and their body ranges.
    let mut fns: Vec<FnDef<'_>> = Vec::new();
    let mut i = 0;
    while i < view.len() {
        if view.text(i) == "fn"
            && view.kind(i + 1) == Some(TokenKind::Ident)
            && !view.is_test_code(i)
        {
            let name = view.text(i + 1);
            // Find the body: the first top-level `{` before any
            // top-level `;` (a `;` first means a bodyless declaration).
            let mut j = i + 2;
            let mut depth = 0i64;
            let mut body = None;
            while j < view.len() {
                match view.text(j) {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    ";" if depth == 0 => break,
                    "{" if depth == 0 => {
                        body = Some((j, view.skip_braces(j)));
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            if let Some(body) = body {
                fns.push(FnDef {
                    name,
                    body,
                    constructions: Vec::new(),
                    has_with_location: false,
                    calls: Vec::new(),
                    callers: Vec::new(),
                });
                // Continue scanning *inside* the body too: nested fns.
                i += 2;
                continue;
            }
        }
        i += 1;
    }

    // Innermost function containing sig position `p`.
    let bodies: Vec<(usize, usize)> = fns.iter().map(|f| f.body).collect();
    let owner = |p: usize| -> Option<usize> {
        bodies
            .iter()
            .enumerate()
            .filter(|(_, b)| b.0 <= p && p < b.1)
            .min_by_key(|(_, b)| b.1 - b.0)
            .map(|(k, _)| k)
    };

    // Pass 2: constructions, with_location markers, and the intra-file
    // call graph.
    let mut orphans: Vec<usize> = Vec::new(); // constructions outside any fn
    for p in 0..view.len() {
        if view.is_test_code(p) {
            continue;
        }
        if view.matches(p, &["ParseError", ":", ":", "new"]) {
            match owner(p) {
                Some(k) => fns[k].constructions.push(p),
                None => orphans.push(p),
            }
        }
        if view.text(p) == "with_location" && p > 0 && view.text(p - 1) == "." {
            if let Some(k) = owner(p) {
                fns[k].has_with_location = true;
            }
        }
        if view.kind(p) == Some(TokenKind::Ident) && view.text(p + 1) == "(" && view.text(p) != "fn"
        {
            // A call to a function defined in this file (by name; free
            // or method position both count).
            if p > 0 && view.text(p - 1) == "fn" {
                continue; // the definition itself
            }
            let callee_name = view.text(p);
            if let Some(caller) = owner(p) {
                for k in 0..fns.len() {
                    if fns[k].name == callee_name && k != caller {
                        fns[caller].calls.push(k);
                        fns[k].callers.push(caller);
                    }
                }
            }
        }
    }

    // Pass 3: fixpoint. A function is "located" when it attaches a
    // location itself, or when every one of its (at least one)
    // intra-file callers is located.
    let mut located: Vec<bool> = fns.iter().map(|f| f.has_with_location).collect();
    loop {
        let mut changed = false;
        for k in 0..fns.len() {
            if !located[k]
                && !fns[k].callers.is_empty()
                && fns[k].callers.iter().all(|&c| located[c])
            {
                located[k] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    for (k, f) in fns.iter().enumerate() {
        if located[k] {
            continue;
        }
        for &p in &f.constructions {
            hits.push(Hit {
                line: view.line(p),
                rule: Rule::LocatedErrors,
                message: format!(
                    "ParseError constructed in `{}` without `.with_location(file, line)` on any \
                     caller path in this file",
                    f.name
                ),
            });
        }
    }
    for p in orphans {
        hits.push(Hit {
            line: view.line(p),
            rule: Rule::LocatedErrors,
            message: "ParseError constructed outside any function without `.with_location(file, \
                      line)`"
                .to_owned(),
        });
    }
}

//! droplens-lint: the workspace's own invariant checker.
//!
//! The pipeline's two non-negotiables — byte-identical output at any
//! `DROPLENS_THREADS`, and panic-free, located error handling in every
//! parser — used to live in reviewers' heads. This crate makes them
//! machine-enforced: a zero-dependency, token-level static analysis
//! over the workspace's own sources, run as `droplens lint` locally and
//! as a CI gate.
//!
//! Nine token-level rules, each scoped to the modules where its
//! invariant bites (see [`rules_for_path`] and DESIGN.md §9):
//!
//! | rule | scope | bans |
//! |------|-------|------|
//! | `no-unwrap` | format/archive/journal/list/ingest and serve-path modules | `.unwrap()`, `.expect()`, `panic!`, `todo!`, `unimplemented!` |
//! | `ordered-output` | modules that write archives, reports, or traces | `HashMap`, `HashSet` |
//! | `no-wallclock` | everything outside `crates/obs` | `Instant::now`, `SystemTime::now` |
//! | `seeded-rng-only` | everywhere | `thread_rng`, `from_entropy`, `from_os_rng`, `OsRng`, `rand::random` |
//! | `located-errors` | parser modules (format/journal/list) | `ParseError::new` with no `.with_location` on any intra-file caller path |
//! | `no-unbounded-collect` | parser/writer hot paths (format/archive) | `.collect` without an acknowledging escape |
//! | `no-string-keyed-hot-map` | parser/writer hot paths (format/archive) | `HashMap<String, _>` / `BTreeMap<String, _>` |
//! | `no-deadline-free-io` | serve-path modules (server/client/loadgen/net) | `TcpStream::connect`, and socket read/write in functions with no configured timeout |
//! | `lock-across-io` | serve-path modules (server/client/loadgen/net) | a `let`-bound lock guard still live at a blocking socket read/write |
//!
//! Plus two **workspace rules** that run over the intra-workspace call
//! graph ([`parse`], `graph`, `taint`; DESIGN.md §14) when whole file
//! sets are linted via [`lint_files`]:
//!
//! | rule | entry/sink | bans |
//! |------|------------|------|
//! | `no-panic-in-request-path` | `pub` fns in `server`/`engine` files | any reachable `.unwrap()`, `.expect()`, panicking macro, or indexing/slicing |
//! | `wallclock-taint` | ordered-output modules (minus `crates/obs`) | calling any function whose return value derives from `Instant::now`/`SystemTime::now` |
//!
//! A finding can be suppressed per line with a trailing
//! `// lint: allow(<rule>)` comment (or one on its own line directly
//! above). For the workspace rules the same escape on a *call* line is
//! a per-edge escape: reachability/taint stops propagating through that
//! call. Escapes naming unknown rules are themselves reported, so a
//! typo cannot silently disable checking.

#![warn(missing_docs)]

mod graph;
pub mod lexer;
pub mod parse;
mod rules;
mod taint;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use rules::FileView;

/// The rules droplens-lint knows about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// No `.unwrap()` / `.expect()` / `panic!` / `todo!` /
    /// `unimplemented!` in format/archive/ingest modules.
    NoUnwrap,
    /// No `HashMap`/`HashSet` in modules that write archives, reports,
    /// or trace exports.
    OrderedOutput,
    /// `Instant::now`/`SystemTime::now` only inside `crates/obs`.
    NoWallclock,
    /// No entropy-seeded RNG construction anywhere.
    SeededRngOnly,
    /// Every `ParseError` construction in a parser module is located.
    LocatedErrors,
    /// No `.collect` on format/archive hot paths without an explicit
    /// acknowledging escape — materializing an unbounded intermediate
    /// Vec is how 10–100× worlds run out of memory.
    NoUnboundedCollect,
    /// No `String`-keyed maps on format/archive hot paths: every
    /// insert/lookup hashes and possibly clones the full string. Intern
    /// to a `u32` id (`StrTable`/`StringInterner`) and key by that.
    NoStringKeyedHotMap,
    /// No deadline-free socket IO on serve paths: `TcpStream::connect`
    /// (no timeout) is banned outright, and a function doing socket
    /// read/write must configure both `set_read_timeout` and
    /// `set_write_timeout` (or go through `DeadlineStream`, which does).
    NoDeadlineFreeIo,
    /// No `Mutex`/`RwLock` guard held live across a blocking socket
    /// read/write on serve paths — a wedged peer would hold the lock
    /// (and every waiter) hostage for its full network latency.
    LockAcrossIo,
    /// Workspace rule: no panic source — `.unwrap()`, `.expect()`,
    /// panicking macros, indexing/slicing — transitively reachable over
    /// the call graph from a `server`/`engine` request entry point.
    NoPanicInRequestPath,
    /// Workspace rule: no wallclock-derived value (a function returning
    /// data from `Instant::now`/`SystemTime::now`, directly or through
    /// callees) called from an ordered-output module.
    WallclockTaint,
    /// A `// lint: allow(...)` escape that names an unknown rule.
    BadEscape,
}

impl Rule {
    /// Every scannable rule (excludes [`Rule::BadEscape`], which is
    /// emitted by the escape parser, not scanned for).
    pub const ALL: [Rule; 11] = [
        Rule::NoUnwrap,
        Rule::OrderedOutput,
        Rule::NoWallclock,
        Rule::SeededRngOnly,
        Rule::LocatedErrors,
        Rule::NoUnboundedCollect,
        Rule::NoStringKeyedHotMap,
        Rule::NoDeadlineFreeIo,
        Rule::LockAcrossIo,
        Rule::NoPanicInRequestPath,
        Rule::WallclockTaint,
    ];

    /// The kebab-case name used in diagnostics and escapes.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoUnwrap => "no-unwrap",
            Rule::OrderedOutput => "ordered-output",
            Rule::NoWallclock => "no-wallclock",
            Rule::SeededRngOnly => "seeded-rng-only",
            Rule::LocatedErrors => "located-errors",
            Rule::NoUnboundedCollect => "no-unbounded-collect",
            Rule::NoStringKeyedHotMap => "no-string-keyed-hot-map",
            Rule::NoDeadlineFreeIo => "no-deadline-free-io",
            Rule::LockAcrossIo => "lock-across-io",
            Rule::NoPanicInRequestPath => "no-panic-in-request-path",
            Rule::WallclockTaint => "wallclock-taint",
            Rule::BadEscape => "bad-escape",
        }
    }

    /// Parse a rule name as written in an escape comment.
    pub fn from_name(s: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == s)
    }
}

/// One finding: where, which rule, and what to do about it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file, `/`-separated.
    pub path: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

/// The outcome of linting a set of files.
#[derive(Debug, Default)]
pub struct LintReport {
    /// How many files were scanned.
    pub files_checked: usize,
    /// Findings suppressed by `// lint: allow(...)` escapes.
    pub suppressed: usize,
    /// Findings removed by an accepted baseline snapshot
    /// ([`LintReport::apply_baseline`]).
    pub baselined: usize,
    /// Surviving findings, sorted by path, line, rule.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// True when no diagnostics survived.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Render as `path:line: [rule] message` lines plus a summary.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(
                out,
                "{}:{}: [{}] {}",
                d.path,
                d.line,
                d.rule.name(),
                d.message
            );
        }
        let baselined = if self.baselined > 0 {
            format!(", {} baselined", self.baselined)
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "droplens-lint: {} violation{} ({} suppressed{}) in {} file{}",
            self.diagnostics.len(),
            if self.diagnostics.len() == 1 { "" } else { "s" },
            self.suppressed,
            baselined,
            self.files_checked,
            if self.files_checked == 1 { "" } else { "s" },
        );
        out
    }

    /// Render as stable JSON (schema `droplens-lint/2`): diagnostics in
    /// the same sorted order as [`LintReport::to_text`].
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"droplens-lint/2\"");
        let _ = write!(
            out,
            ",\"files_checked\":{},\"violations\":{},\"suppressed\":{},\"baselined\":{},\"diagnostics\":[",
            self.files_checked,
            self.diagnostics.len(),
            self.suppressed,
            self.baselined,
        );
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"path\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
                json_escape(&d.path),
                d.line,
                d.rule.name(),
                json_escape(&d.message),
            );
        }
        out.push_str("]}\n");
        out
    }

    /// Render as minimal SARIF 2.1.0 for CI annotation. Hand-rolled and
    /// byte-stable like every other output: the driver lists all known
    /// rules, results carry `ruleId`, `level: error`, the message, and
    /// one physical location each, in diagnostic order.
    pub fn to_sarif(&self) -> String {
        let mut out = String::from(
            "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
             \"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\
             \"name\":\"droplens-lint\",\"rules\":[",
        );
        let mut rules: Vec<Rule> = Rule::ALL.to_vec();
        rules.push(Rule::BadEscape);
        for (i, r) in rules.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"id\":\"{}\"}}", r.name());
        }
        out.push_str("]}},\"results\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"ruleId\":\"{}\",\"level\":\"error\",\"message\":{{\"text\":\"{}\"}},\
                 \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\
                 \"region\":{{\"startLine\":{}}}}}}}]}}",
                d.rule.name(),
                json_escape(&d.message),
                json_escape(&d.path),
                d.line,
            );
        }
        out.push_str("]}]}\n");
        out
    }

    /// Render the surviving findings as a baseline snapshot: one
    /// `path<TAB>rule<TAB>message` line per finding, in diagnostic
    /// order, duplicates kept. Line numbers are deliberately omitted so
    /// a baseline survives unrelated edits above a finding.
    pub fn to_baseline(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(
                out,
                "{}\t{}\t{}",
                d.path,
                d.rule.name(),
                json_escape(&d.message)
            );
        }
        out
    }

    /// Remove findings recorded in `baseline` (a [`to_baseline`]
    /// snapshot), with multiset semantics: a baseline line absolves at
    /// most one matching finding. Removed findings are counted in
    /// [`LintReport::baselined`]. Unknown or malformed baseline lines
    /// are ignored — a stale baseline can only fail closed (findings
    /// resurface), never suppress something new.
    ///
    /// [`to_baseline`]: LintReport::to_baseline
    pub fn apply_baseline(&mut self, baseline: &str) {
        let mut budget: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        for line in baseline.lines() {
            let mut parts = line.splitn(3, '\t');
            if let (Some(p), Some(r), Some(m)) = (parts.next(), parts.next(), parts.next()) {
                *budget
                    .entry((p.to_owned(), r.to_owned(), m.to_owned()))
                    .or_default() += 1;
            }
        }
        let mut kept = Vec::with_capacity(self.diagnostics.len());
        for d in std::mem::take(&mut self.diagnostics) {
            let key = (
                d.path.clone(),
                d.rule.name().to_owned(),
                json_escape(&d.message),
            );
            match budget.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    self.baselined += 1;
                }
                _ => kept.push(d),
            }
        }
        self.diagnostics = kept;
    }
}

/// Escape `s` as the body of a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Which rules apply to the file at `path` (workspace-relative).
///
/// Scoping is by path shape, so the same classification covers real
/// sources and the fixture corpus:
///
/// * `vendor/`, `target/`, `.git/` — nothing applies;
/// * test-ish trees (`tests/`, `benches/`, `examples/` outside a
///   `fixtures/` dir) — only `seeded-rng-only`;
/// * `crates/obs/` is exempt from `no-wallclock` (it owns the clock);
/// * file-stem scopes: `no-unwrap` on format/archive/journal/list/
///   ingest, `located-errors` on format/journal/list, `ordered-output`
///   on the output writers (format, layout, sbltext, report,
///   run_report, json, trace, registry, perf, paper, experiments/*),
///   `no-unbounded-collect` and `no-string-keyed-hot-map` on the
///   per-record hot paths (format, archive), `no-deadline-free-io` on
///   the socket-touching serve paths (server, client, loadgen, net).
pub fn rules_for_path(path: &str) -> Vec<Rule> {
    let norm = path.replace('\\', "/");
    let comps: Vec<&str> = norm
        .split('/')
        .filter(|c| !c.is_empty() && *c != ".")
        .collect();
    let Some(file) = comps.last() else {
        return Vec::new();
    };
    let Some(stem) = file.strip_suffix(".rs") else {
        return Vec::new();
    };
    let has = |name: &str| comps.contains(&name);
    if has("vendor") || has("target") || has(".git") {
        return Vec::new();
    }
    let mut rules = vec![Rule::SeededRngOnly];
    let fixture = has("fixtures");
    if !fixture && (has("tests") || has("benches") || has("examples")) {
        return rules;
    }
    if !has("obs") {
        rules.push(Rule::NoWallclock);
    }
    const UNWRAP_STEMS: [&str; 11] = [
        "format", "archive", "journal", "list", "ingest", // parsers and writers
        "protocol", "engine", "server", "client", "loadgen", "net", // serve paths
    ];
    const DEADLINE_STEMS: [&str; 4] = ["server", "client", "loadgen", "net"];
    const LOCATED_STEMS: [&str; 3] = ["format", "journal", "list"];
    const COLLECT_STEMS: [&str; 2] = ["format", "archive"];
    const ORDERED_STEMS: [&str; 10] = [
        "format",
        "layout",
        "sbltext",
        "report",
        "run_report",
        "json",
        "trace",
        "registry",
        "perf",
        "paper",
    ];
    if UNWRAP_STEMS.contains(&stem) {
        rules.push(Rule::NoUnwrap);
    }
    if ORDERED_STEMS.contains(&stem) || has("experiments") {
        rules.push(Rule::OrderedOutput);
    }
    if LOCATED_STEMS.contains(&stem) {
        rules.push(Rule::LocatedErrors);
    }
    if COLLECT_STEMS.contains(&stem) {
        rules.push(Rule::NoUnboundedCollect);
        rules.push(Rule::NoStringKeyedHotMap);
    }
    if DEADLINE_STEMS.contains(&stem) {
        rules.push(Rule::NoDeadlineFreeIo);
        rules.push(Rule::LockAcrossIo);
    }
    rules.sort();
    rules
}

/// How the file at `path` participates in the workspace-level passes
/// ([`Rule::NoPanicInRequestPath`], [`Rule::WallclockTaint`]). `None`
/// when the file contributes no call-graph nodes at all.
pub(crate) fn graph_role(path: &str) -> Option<GraphRole> {
    let norm = path.replace('\\', "/");
    let comps: Vec<&str> = norm
        .split('/')
        .filter(|c| !c.is_empty() && *c != ".")
        .collect();
    let stem = comps.last()?.strip_suffix(".rs")?;
    let has = |name: &str| comps.contains(&name);
    if has("vendor") || has("target") || has(".git") {
        return None;
    }
    // Test-ish trees are not part of the shipped call graph — except
    // the fixture corpus, which classifies like sources.
    if !has("fixtures") && (has("tests") || has("benches") || has("examples")) {
        return None;
    }
    Some(GraphRole {
        // The request-handling surface: every `pub` fn in a `server` or
        // `engine` file is an entry (the pub filter happens graph-side,
        // where signatures are known). Coarse on purpose — the public
        // surface of those files is exactly what a request can invoke.
        entry: stem == "server" || stem == "engine",
        // Panic sources no-unwrap already bans lexically are skipped in
        // these files; the graph rule reports only what is new there.
        lexical_nounwrap: rules_for_path(path).contains(&Rule::NoUnwrap),
        // Wallclock-taint sinks: ordered-output modules, minus obs
        // (which owns the clock).
        ordered_sink: rules_for_path(path).contains(&Rule::OrderedOutput) && !has("obs"),
        // Clock reads inside obs are the sanctioned channel (Stopwatch,
        // spans) — they never seed taint, exactly as they are exempt
        // from the lexical `no-wallclock`. Taint tracks clock values
        // born *outside* that boundary.
        clock_owner: has("obs"),
    })
}

/// A file's roles in the workspace passes; see [`graph_role`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct GraphRole {
    pub entry: bool,
    pub lexical_nounwrap: bool,
    pub ordered_sink: bool,
    pub clock_owner: bool,
}

/// Per-line allow-escapes parsed from `// lint: allow(a, b)` comments.
struct Escapes {
    /// (line, rule) pairs that are allowed.
    allowed: BTreeSet<(u32, Rule)>,
    /// Diagnostics for malformed escapes.
    bad: Vec<(u32, String)>,
}

/// Parse escapes from the comment tokens. A same-line escape suppresses
/// findings on its own line; an escape that is the only thing on its
/// line also covers the next code line (so rustfmt-wrapped lines keep
/// their escape). Doc comments (`///`, `//!`) never carry escapes.
fn parse_escapes(src: &str, view: &FileView<'_>) -> Escapes {
    let mut esc = Escapes {
        allowed: BTreeSet::new(),
        bad: Vec::new(),
    };
    for (idx, tok) in view.tokens.iter().enumerate() {
        if tok.kind != lexer::TokenKind::LineComment {
            continue;
        }
        let body = &tok.text[2..];
        if body.starts_with('/') || body.starts_with('!') {
            continue; // doc comment
        }
        let Some(rest) = body.trim_start().strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(list) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.split_once(')'))
            .map(|(names, _)| names)
        else {
            esc.bad.push((
                tok.line,
                format!(
                    "malformed lint escape {:?} — expected `lint: allow(<rule>, ...)`",
                    body.trim()
                ),
            ));
            continue;
        };
        let mut lines = vec![tok.line];
        // Standalone comment: nothing but whitespace before it on its
        // line — the escape also covers the next code line.
        let line_start = src[..tok.start].rfind('\n').map(|p| p + 1).unwrap_or(0);
        if src[line_start..tok.start].chars().all(char::is_whitespace) {
            if let Some(next) = view.tokens[idx + 1..].iter().find(|t| !t.is_trivia()) {
                lines.push(next.line);
            }
        }
        for name in list.split(',').map(str::trim).filter(|n| !n.is_empty()) {
            match Rule::from_name(name) {
                Some(rule) => {
                    for &l in &lines {
                        esc.allowed.insert((l, rule));
                    }
                }
                None => esc.bad.push((
                    tok.line,
                    format!(
                        "unknown rule {name:?} in lint escape (known: {})",
                        rule_names()
                    ),
                )),
            }
        }
    }
    esc
}

fn rule_names() -> String {
    Rule::ALL
        .iter()
        .map(|r| r.name())
        .collect::<Vec<_>>()
        .join(", ")
}

/// One file's fully-local lint result: its token-rule diagnostics plus
/// everything the workspace passes need later.
struct FileUnit {
    diags: Vec<Diagnostic>,
    suppressed: usize,
    /// `Some` when the file contributes call-graph nodes.
    work: Option<graph::WorkFile>,
}

/// Lint one file's source under its path-selected token rules and
/// parse it for the workspace passes.
fn lint_unit(path: &str, src: &str) -> FileUnit {
    let rules = rules_for_path(path);
    let view = FileView::new(src);
    let escapes = parse_escapes(src, &view);
    let mut hits = Vec::new();
    for &rule in &rules {
        rules::check(rule, &view, &mut hits);
    }
    let mut suppressed = 0usize;
    let mut out: Vec<Diagnostic> = Vec::new();
    for hit in hits {
        if escapes.allowed.contains(&(hit.line, hit.rule)) {
            suppressed += 1;
            continue;
        }
        out.push(Diagnostic {
            path: path.to_owned(),
            line: hit.line,
            rule: hit.rule,
            message: hit.message,
        });
    }
    for (line, message) in escapes.bad {
        out.push(Diagnostic {
            path: path.to_owned(),
            line,
            rule: Rule::BadEscape,
            message,
        });
    }
    out.sort_by(|a, b| (a.line, a.rule, &a.message).cmp(&(b.line, b.rule, &b.message)));
    let work = graph_role(path).map(|role| graph::WorkFile {
        label: path.to_owned(),
        index: parse::parse_file(path, &view),
        escapes: escapes.allowed,
        role,
    });
    FileUnit {
        diags: out,
        suppressed,
        work,
    }
}

/// Lint one file's source text under the token-level rules its path
/// selects. Returns the surviving diagnostics and the suppressed
/// count. The workspace rules (`no-panic-in-request-path`,
/// `wallclock-taint`) need the whole file set and therefore only run
/// under [`lint_files`].
pub fn lint_source(path: &str, src: &str) -> (Vec<Diagnostic>, usize) {
    let unit = lint_unit(path, src);
    (unit.diags, unit.suppressed)
}

/// Recursively collect `.rs` files under each input, in sorted order.
/// Directories named `target`, `vendor`, `.git`, or `fixtures` are
/// skipped during the walk; explicitly named files are always included
/// (that is how the CI self-test lints the fixture corpus).
pub fn collect_rs_files(inputs: &[PathBuf]) -> io::Result<Vec<PathBuf>> {
    const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", "fixtures"];
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
            .map(|e| e.map(|e| e.path()))
            .collect::<io::Result<Vec<_>>>()?;
        entries.sort();
        for entry in entries {
            let name = entry
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if entry.is_dir() {
                if !SKIP_DIRS.contains(&name.as_str()) {
                    walk(&entry, out)?;
                }
            } else if name.ends_with(".rs") {
                out.push(entry);
            }
        }
        Ok(())
    }
    let mut out = Vec::new();
    for input in inputs {
        if input.is_dir() {
            walk(input, &mut out)?;
        } else {
            out.push(input.clone());
        }
    }
    out.sort();
    out.dedup();
    Ok(out)
}

/// Lint every file in `files` (as returned by [`collect_rs_files`]):
/// per-file lexing, parsing, and token rules run in parallel on
/// [`droplens_par`] workers (`DROPLENS_THREADS` honored), then the
/// workspace passes run over the merged call graph. Output is
/// byte-identical at any worker count: results are merged in input
/// order and fully sorted at the end.
pub fn lint_files(files: &[PathBuf]) -> io::Result<LintReport> {
    lint_files_with(droplens_par::max_threads(), files)
}

/// [`lint_files`] with an explicit worker count (the determinism tests
/// and the bench compare `1` against the default).
pub fn lint_files_with(workers: usize, files: &[PathBuf]) -> io::Result<LintReport> {
    let units: Vec<io::Result<FileUnit>> = droplens_par::par_map_with(workers, files, |file| {
        let src = std::fs::read_to_string(file)?;
        let label = file.to_string_lossy().replace('\\', "/");
        let label = label.strip_prefix("./").unwrap_or(&label).to_owned();
        Ok(lint_unit(&label, &src))
    });
    let mut report = LintReport::default();
    let mut work: Vec<graph::WorkFile> = Vec::new();
    for unit in units {
        let unit = unit?;
        report.files_checked += 1;
        report.suppressed += unit.suppressed;
        report.diagnostics.extend(unit.diags);
        if let Some(wf) = unit.work {
            work.push(wf);
        }
    }
    // The workspace passes: label order fixes node order, hence
    // resolution, BFS, and diagnostic order.
    work.sort_by(|a, b| a.label.cmp(&b.label));
    let g = graph::Graph::build(&work);
    let mut graph_suppressed = 0usize;
    graph::no_panic_in_request_path(&g, &mut report.diagnostics, &mut graph_suppressed);
    taint::wallclock_taint(&g, &mut report.diagnostics, &mut graph_suppressed);
    report.suppressed += graph_suppressed;
    report.diagnostics.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    Ok(report)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code: panics are failures
mod tests {
    use super::*;

    #[test]
    fn scope_classification_matches_the_tree() {
        let r = rules_for_path("crates/bgp/src/format.rs");
        assert!(r.contains(&Rule::NoUnwrap));
        assert!(r.contains(&Rule::OrderedOutput));
        assert!(r.contains(&Rule::LocatedErrors));
        assert!(r.contains(&Rule::NoWallclock));
        assert!(r.contains(&Rule::NoUnboundedCollect));

        let r = rules_for_path("crates/bgp/src/archive.rs");
        assert!(r.contains(&Rule::NoUnboundedCollect));
        let r = rules_for_path("crates/core/src/study.rs");
        assert!(!r.contains(&Rule::NoUnboundedCollect), "cold paths exempt");

        let r = rules_for_path("crates/obs/src/trace.rs");
        assert!(!r.contains(&Rule::NoWallclock), "obs owns the clock");
        assert!(r.contains(&Rule::OrderedOutput));

        let r = rules_for_path("crates/bgp/tests/proptests.rs");
        assert_eq!(r, vec![Rule::SeededRngOnly]);

        assert!(rules_for_path("vendor/rand/src/lib.rs").is_empty());
        assert!(rules_for_path("crates/core/README.md").is_empty());

        // Serve paths: no-unwrap plus the socket-deadline rule.
        let r = rules_for_path("crates/serve/src/server.rs");
        assert!(r.contains(&Rule::NoUnwrap));
        assert!(r.contains(&Rule::NoDeadlineFreeIo));
        let r = rules_for_path("crates/faults/src/net.rs");
        assert!(r.contains(&Rule::NoDeadlineFreeIo));
        let r = rules_for_path("crates/serve/src/engine.rs");
        assert!(r.contains(&Rule::NoUnwrap));
        assert!(
            !r.contains(&Rule::NoDeadlineFreeIo),
            "engine is socket-free"
        );

        // Fixtures classify like sources, not like tests.
        let r = rules_for_path("crates/lint/tests/fixtures/no_unwrap/format.rs");
        assert!(r.contains(&Rule::NoUnwrap));
    }

    #[test]
    fn backslash_paths_classify_like_forward_slash_paths() {
        // Windows-style separators must not defeat path-shape scoping:
        // every component test (vendor skip, test-tree downgrade,
        // fixture rescue, stem scopes) keys off normalized components.
        for (win, unix) in [
            (r"crates\bgp\src\format.rs", "crates/bgp/src/format.rs"),
            (r"vendor\rand\src\lib.rs", "vendor/rand/src/lib.rs"),
            (
                r"crates\bgp\tests\proptests.rs",
                "crates/bgp/tests/proptests.rs",
            ),
            (
                r"crates\lint\tests\fixtures\no_unwrap\format.rs",
                "crates/lint/tests/fixtures/no_unwrap/format.rs",
            ),
            (r"crates\serve\src\server.rs", "crates/serve/src/server.rs"),
        ] {
            assert_eq!(rules_for_path(win), rules_for_path(unix), "{win}");
        }
        // The workspace passes normalize the same way.
        let win = graph_role(r"crates\serve\src\server.rs").unwrap();
        let unix = graph_role("crates/serve/src/server.rs").unwrap();
        assert!(win.entry && unix.entry);
        assert!(graph_role(r"vendor\rand\src\lib.rs").is_none());
    }

    #[test]
    fn same_line_escape_suppresses() {
        let src = "fn f() { x.unwrap(); } // lint: allow(no-unwrap)\n";
        let (diags, suppressed) = lint_source("crates/x/src/format.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn standalone_escape_covers_next_line() {
        let src = "fn f() {\n    // lint: allow(no-unwrap)\n    x.unwrap();\n}\n";
        let (diags, suppressed) = lint_source("crates/x/src/format.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn unknown_rule_in_escape_is_reported() {
        let src = "// lint: allow(no-unwarp)\nfn f() {}\n";
        let (diags, _) = lint_source("crates/x/src/format.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::BadEscape);
        assert!(diags[0].message.contains("no-unwarp"));
    }

    #[test]
    fn cfg_test_code_is_exempt() {
        let src = "fn f() -> u32 { 1 }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { super::f(); Some(1).unwrap(); panic!(\"x\"); }\n}\n";
        let (diags, _) = lint_source("crates/x/src/format.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unwrap_in_strings_and_comments_is_ignored() {
        let src = "fn f() -> &'static str { \"call .unwrap() maybe\" } // .unwrap() here\n";
        let (diags, _) = lint_source("crates/x/src/format.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n";
        let (diags, _) = lint_source("crates/x/src/format.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn located_errors_accepts_the_parser_idiom() {
        // Line-level helper returns a bare error; the loop stamps the
        // location — the idiom every parser in the workspace uses.
        let src = r#"
fn parse_line(s: &str) -> Result<u32, ParseError> {
    s.parse().map_err(|_| ParseError::new("U32", s, "bad"))
}
fn parse_all(text: &str) -> Result<Vec<u32>, ParseError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        match parse_line(line) {
            Ok(v) => out.push(v),
            Err(e) => return Err(e.with_location("f.txt", i as u32 + 1)),
        }
    }
    Ok(out)
}
"#;
        let (diags, _) = lint_source("crates/x/src/format.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn located_errors_flags_unlocated_construction() {
        let src = r#"
fn parse_line(s: &str) -> Result<u32, ParseError> {
    s.parse().map_err(|_| ParseError::new("U32", s, "bad"))
}
pub fn parse_all(text: &str) -> Result<Vec<u32>, ParseError> {
    let mut out = Vec::new();
    for line in text.lines() {
        out.push(parse_line(line)?);
    }
    Ok(out)
}
"#;
        let (diags, _) = lint_source("crates/x/src/format.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, Rule::LocatedErrors);
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn json_report_is_stable() {
        let report = LintReport {
            files_checked: 2,
            suppressed: 1,
            baselined: 0,
            diagnostics: vec![Diagnostic {
                path: "crates/x/src/format.rs".into(),
                line: 7,
                rule: Rule::NoUnwrap,
                message: "`.unwrap()` bad".into(),
            }],
        };
        assert_eq!(
            report.to_json(),
            "{\"schema\":\"droplens-lint/2\",\"files_checked\":2,\"violations\":1,\"suppressed\":1,\"baselined\":0,\"diagnostics\":[{\"path\":\"crates/x/src/format.rs\",\"line\":7,\"rule\":\"no-unwrap\",\"message\":\"`.unwrap()` bad\"}]}\n"
        );
    }

    #[test]
    fn sarif_report_is_stable() {
        let report = LintReport {
            files_checked: 1,
            suppressed: 0,
            baselined: 0,
            diagnostics: vec![Diagnostic {
                path: "crates/x/src/format.rs".into(),
                line: 7,
                rule: Rule::NoUnwrap,
                message: "`.unwrap()` \"bad\"".into(),
            }],
        };
        let sarif = report.to_sarif();
        assert!(sarif.starts_with("{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\""));
        assert!(sarif.contains("\"version\":\"2.1.0\""));
        assert!(sarif.contains("{\"id\":\"no-panic-in-request-path\"}"));
        assert!(sarif.contains(
            "{\"ruleId\":\"no-unwrap\",\"level\":\"error\",\
             \"message\":{\"text\":\"`.unwrap()` \\\"bad\\\"\"},\
             \"locations\":[{\"physicalLocation\":{\"artifactLocation\":\
             {\"uri\":\"crates/x/src/format.rs\"},\"region\":{\"startLine\":7}}}]}"
        ));
    }

    #[test]
    fn baseline_round_trips_and_is_a_multiset() {
        let diag = |line: u32, msg: &str| Diagnostic {
            path: "crates/x/src/format.rs".into(),
            line,
            rule: Rule::NoUnwrap,
            message: msg.into(),
        };
        let mut report = LintReport {
            files_checked: 1,
            suppressed: 0,
            baselined: 0,
            diagnostics: vec![diag(3, "same"), diag(9, "same"), diag(12, "other")],
        };
        // Baseline holds one "same" and one "other": exactly two of the
        // three findings are absolved, line numbers notwithstanding.
        let baseline = LintReport {
            files_checked: 1,
            suppressed: 0,
            baselined: 0,
            diagnostics: vec![diag(999, "same"), diag(999, "other")],
        }
        .to_baseline();
        report.apply_baseline(&baseline);
        assert_eq!(report.baselined, 2);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].message, "same");
        assert!(report.to_text().contains("(0 suppressed, 2 baselined)"));
    }
}

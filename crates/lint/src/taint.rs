//! The `wallclock-taint` workspace pass: values born at
//! `Instant::now`/`SystemTime::now` flowing through function returns
//! into ordered-output modules.
//!
//! The lexical `no-wallclock` rule bans clock *reads* outside
//! `crates/obs`; this pass closes the laundering loophole — a helper in
//! an unscoped module reads the clock, returns the value, and an
//! output writer formats it into a report. Taint is deliberately
//! coarse (DESIGN.md §14): a function is tainted when it returns a
//! value **and** either reads the clock directly or calls (over a
//! resolved edge) a tainted function. No dataflow is tracked inside a
//! body — a function that calls a tainted helper but returns something
//! unrelated is still tainted (escapable false positive), while taint
//! smuggled through `&mut` out-params is invisible (accepted false
//! negative). Ambiguous and unresolved edges never propagate taint.

use std::collections::BTreeMap;

use crate::graph::{Edge, Graph, NodeId};
use crate::{Diagnostic, Rule};

/// Where a node's taint ultimately came from.
#[derive(Clone)]
struct Origin {
    /// The function that reads the clock.
    node: NodeId,
    /// Line of the clock read.
    line: u32,
}

/// Run the pass: seed taint at clock-reading, value-returning
/// functions, propagate through returning callers, then report every
/// resolved call to a tainted function made inside an ordered-output
/// module (sink files; `crates/obs` is exempt — it owns the clock).
/// `// lint: allow(wallclock-taint)` on the call line suppresses a
/// finding; on an intermediate call line it stops propagation through
/// that edge.
pub(crate) fn wallclock_taint(
    graph: &Graph<'_>,
    diags: &mut Vec<Diagnostic>,
    suppressed: &mut usize,
) {
    // Seed: direct clock readers that return a value — except inside
    // `crates/obs`, whose clock reads are the sanctioned channel
    // (mirroring the lexical `no-wallclock` exemption). Stopwatch and
    // span durations are supposed to appear in perf output; the taint
    // rule hunts clock values born outside that boundary.
    let mut tainted: BTreeMap<NodeId, Origin> = BTreeMap::new();
    for (f, wf) in graph.files.iter().enumerate() {
        if wf.role.clock_owner {
            continue;
        }
        for (k, func) in wf.index.fns.iter().enumerate() {
            if func.sig.has_return {
                if let Some(&line) = func.clock_lines.first() {
                    tainted.insert((f, k), Origin { node: (f, k), line });
                }
            }
        }
    }

    // Propagate to returning callers over resolved, unescaped edges,
    // to fixpoint. Deterministic: nodes and calls visit in file/fn/
    // source order, and an already-tainted node is never re-tainted,
    // so the first (in iteration order) tainting call fixes the origin.
    loop {
        let mut changed = false;
        for (f, wf) in graph.files.iter().enumerate() {
            for (k, func) in wf.index.fns.iter().enumerate() {
                if !func.sig.has_return || tainted.contains_key(&(f, k)) {
                    continue;
                }
                for (c, call) in func.calls.iter().enumerate() {
                    let Edge::Resolved(target) = graph.edges[f][k][c] else {
                        continue;
                    };
                    if wf.escapes.contains(&(call.line, Rule::WallclockTaint)) {
                        continue;
                    }
                    if let Some(origin) = tainted.get(&target).cloned() {
                        tainted.insert((f, k), origin);
                        changed = true;
                        break;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Sinks: calls to tainted functions from ordered-output files.
    for (f, wf) in graph.files.iter().enumerate() {
        if !wf.role.ordered_sink {
            continue;
        }
        for (k, func) in wf.index.fns.iter().enumerate() {
            for (c, call) in func.calls.iter().enumerate() {
                let Edge::Resolved(target) = graph.edges[f][k][c] else {
                    continue;
                };
                let Some(origin) = tainted.get(&target) else {
                    continue;
                };
                if wf.escapes.contains(&(call.line, Rule::WallclockTaint)) {
                    *suppressed += 1;
                    continue;
                }
                let origin_fn = graph.node(origin.node);
                diags.push(Diagnostic {
                    path: wf.label.clone(),
                    line: call.line,
                    rule: Rule::WallclockTaint,
                    message: format!(
                        "`{}` returns a wallclock-derived value (clock read in `{}` at {}:{}) \
                         into an ordered-output module — take time from droplens_obs instead",
                        call.name,
                        origin_fn.display_name(),
                        graph.files[origin.node.0].label,
                        origin.line,
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code: panics are failures
mod tests {
    use super::*;
    use crate::graph::WorkFile;
    use crate::parse::parse_file;
    use crate::rules::FileView;

    fn work(label: &str, src: &str) -> WorkFile {
        let view = FileView::new(src);
        WorkFile {
            label: label.to_owned(),
            index: parse_file(label, &view),
            escapes: crate::parse_escapes(src, &view).allowed,
            role: crate::graph_role(label).unwrap(),
        }
    }

    fn run(files: &[WorkFile]) -> (Vec<Diagnostic>, usize) {
        let graph = Graph::build(files);
        let mut diags = Vec::new();
        let mut suppressed = 0;
        wallclock_taint(&graph, &mut diags, &mut suppressed);
        (diags, suppressed)
    }

    #[test]
    fn laundered_clock_value_reaches_the_sink() {
        let files = [
            work(
                "crates/util/src/clockio.rs",
                "pub fn stamp_ns() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n\
                 pub fn relay_ns() -> u64 { stamp_ns() }\n",
            ),
            work(
                "crates/out/src/report.rs",
                "pub fn render() -> String { format_row(relay_ns()) }\n\
                 fn format_row(x: u64) -> String { x.to_string() }\n",
            ),
        ];
        let (diags, _) = run(&files);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, Rule::WallclockTaint);
        assert_eq!(diags[0].path, "crates/out/src/report.rs");
        assert!(
            diags[0].message.contains("`stamp_ns`") && diags[0].message.contains("clockio.rs:1"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn non_returning_clock_reader_does_not_taint() {
        let files = [
            work(
                "crates/util/src/clockio.rs",
                "pub fn log_now() { let _ = Instant::now(); }\n",
            ),
            work(
                "crates/out/src/report.rs",
                "pub fn render() { log_now(); }\n",
            ),
        ];
        let (diags, _) = run(&files);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn obs_clock_reads_do_not_seed_taint() {
        let files = [
            work(
                "crates/obs/src/clock.rs",
                "pub fn start_ns() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n",
            ),
            work(
                "crates/out/src/report.rs",
                "pub fn render() -> u64 { start_ns() }\n",
            ),
        ];
        let (diags, _) = run(&files);
        assert!(diags.is_empty(), "obs owns the clock: {diags:?}");
    }

    #[test]
    fn sink_escape_suppresses() {
        let files = [
            work(
                "crates/util/src/clockio.rs",
                "pub fn stamp_ns() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n",
            ),
            work(
                "crates/out/src/report.rs",
                "pub fn render() -> u64 {\n\
                 \x20   stamp_ns() // lint: allow(wallclock-taint)\n\
                 }\n",
            ),
        ];
        let (diags, suppressed) = run(&files);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(suppressed, 1);
    }
}

//! A brace-matched item parser over the lexer's token stream.
//!
//! Token-level rules can see *what* a line does; they cannot see *who
//! reaches it*. This module adds exactly the structure the reachability
//! rules need and nothing more: `fn`/`impl`/`mod`/`use` items with
//! spans, and for every function an owned summary — parameters, call
//! sites with argument counts, panic sources, wallclock reads — that
//! the workspace passes ([`crate::graph`]) join across files.
//!
//! Like the lexer underneath it, the parser is **total**: it never
//! panics and never rejects, on any token stream (property-tested in
//! `tests/parse_props.rs`). Unbalanced braces simply truncate the
//! current item at end of file. It is also deliberately **not** a Rust
//! front-end: no macro expansion, no type resolution, generics are
//! skipped by bracket matching, and argument counts are comma counts
//! (closure parameter lists are excluded from the count). The
//! approximation contract — what that buys and what it costs — is
//! DESIGN.md §14.

use crate::lexer::TokenKind;
use crate::rules::FileView;

/// What kind of item an [`Item`] is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemKind {
    /// A function definition with a body.
    Fn(FnSig),
    /// `impl Type { ... }` — `ty` is the self-type (for trait impls,
    /// the implementing type after `for`).
    Impl {
        /// The self-type name, e.g. `Engine` for both `impl Engine`
        /// and `impl Display for Engine`.
        ty: String,
    },
    /// `mod name { ... }` or `mod name;`.
    Mod {
        /// The module name.
        name: String,
    },
    /// `use path::to::thing;` with the path recorded verbatim
    /// (whitespace-free).
    Use {
        /// The imported path text, e.g. `std::collections::BTreeMap`.
        path: String,
    },
}

/// One parsed item: kind plus its span over significant-token
/// positions (half-open, in [`FileView`] sig coordinates). Functions
/// nested inside other functions' bodies appear as later siblings, not
/// children — the flat `fns` index is what the analysis passes consume.
#[derive(Debug, Clone)]
pub struct Item {
    /// What the item is.
    pub kind: ItemKind,
    /// Half-open significant-token span `[start, end)` covering the
    /// item from its introducing keyword through its body or `;`.
    pub span: (usize, usize),
    /// 1-based source line of the introducing keyword.
    pub line: u32,
    /// Items nested inside an impl or inline mod body.
    pub children: Vec<Item>,
}

/// A function signature, reduced to what approximate name resolution
/// needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSig {
    /// The function's name.
    pub name: String,
    /// The enclosing impl's self-type, when there is one.
    pub qual: Option<String>,
    /// Parameter count, excluding any `self` receiver.
    pub params: usize,
    /// Whether the first parameter is a `self` receiver.
    pub has_self: bool,
    /// Whether the signature declares a return type (`-> ...`).
    pub has_return: bool,
    /// Whether the fn is `pub` (any visibility spelling — `pub`,
    /// `pub(crate)`, `pub(super)` all count).
    pub is_pub: bool,
}

/// How a call site names its callee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallStyle {
    /// `callee(args)` or `Path::callee(args)`.
    Free,
    /// `.callee(args)` — a method call with an implicit receiver.
    Method,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The callee name (last path segment for `Path::callee`).
    pub name: String,
    /// Comma-counted argument count (a method call's receiver is not
    /// counted).
    pub args: usize,
    /// Free or method call.
    pub style: CallStyle,
    /// 1-based source line of the callee token.
    pub line: u32,
}

/// The panic-source kinds `no-panic-in-request-path` looks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `.unwrap()`.
    Unwrap,
    /// `.expect(...)`.
    Expect,
    /// `panic!`, `todo!`, `unimplemented!`.
    PanicMacro,
    /// `x[...]` indexing or slicing (both panic out of bounds).
    Index,
}

impl PanicKind {
    /// How the diagnostic names this source.
    pub fn describe(self) -> &'static str {
        match self {
            PanicKind::Unwrap => "`.unwrap()`",
            PanicKind::Expect => "`.expect()`",
            PanicKind::PanicMacro => "a panicking macro",
            PanicKind::Index => "indexing/slicing (`[...]`)",
        }
    }

    /// Whether `no-unwrap` already bans this source lexically (so the
    /// reachability rule only adds value outside `no-unwrap`'s scope).
    pub fn lexically_banned(self) -> bool {
        !matches!(self, PanicKind::Index)
    }
}

/// A potential panic inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// Which source.
    pub kind: PanicKind,
    /// 1-based source line.
    pub line: u32,
}

/// One function, flattened out of the item tree with everything the
/// workspace passes need. Owned — no borrows into the source text — so
/// per-file parsing runs on `crates/par` workers and the summaries
/// outlive the token streams.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// The signature.
    pub sig: FnSig,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Call sites in the body, in source order, attributed to the
    /// innermost enclosing function.
    pub calls: Vec<CallSite>,
    /// Panic sources in the body, in source order.
    pub panics: Vec<PanicSite>,
    /// Lines of direct `Instant::now`/`SystemTime::now` reads.
    pub clock_lines: Vec<u32>,
}

impl FnNode {
    /// `Type::name` when the fn sits in an impl, else just `name`.
    pub fn display_name(&self) -> String {
        match &self.sig.qual {
            Some(q) => format!("{q}::{}", self.sig.name),
            None => self.sig.name.clone(),
        }
    }
}

/// Everything the workspace passes need from one file.
#[derive(Debug, Clone, Default)]
pub struct FileIndex {
    /// Workspace-relative, `/`-separated path.
    pub path: String,
    /// Top-level items (functions, impls, mods, uses), in source order.
    pub items: Vec<Item>,
    /// Every function with a body, flattened in source order.
    pub fns: Vec<FnNode>,
}

/// Keywords that can directly precede `(` or `[` without being a call
/// or an indexing receiver.
const KEYWORDS: [&str; 22] = [
    "if", "else", "while", "for", "match", "return", "loop", "in", "as", "move", "unsafe", "let",
    "ref", "mut", "break", "continue", "where", "impl", "dyn", "pub", "use", "fn",
];

/// Parse source text into a [`FileIndex`] (lexes internally). This is
/// the public entry point; the lint pipeline reuses its already-built
/// [`FileView`] via [`parse_file`].
pub fn parse_source(path: &str, src: &str) -> FileIndex {
    parse_file(path, &FileView::new(src))
}

/// Parse one file's significant-token stream into a [`FileIndex`].
/// `#[cfg(test)]`-gated regions are skipped entirely, the same way the
/// token rules skip them.
pub(crate) fn parse_file(path: &str, view: &FileView<'_>) -> FileIndex {
    let mut parser = Parser {
        view,
        bodies: Vec::new(),
    };
    let (items, _) = parser.items(0, view.len(), None);
    let mut fns: Vec<FnNode> = parser
        .bodies
        .iter()
        .map(|b| FnNode {
            sig: b.sig.clone(),
            line: b.line,
            calls: Vec::new(),
            panics: Vec::new(),
            clock_lines: Vec::new(),
        })
        .collect();

    // Attribute calls, panic sources, and clock reads to the innermost
    // enclosing function body (the located-errors ownership model).
    let bodies: Vec<(usize, usize)> = parser.bodies.iter().map(|b| b.body).collect();
    let owner = |p: usize| -> Option<usize> {
        bodies
            .iter()
            .enumerate()
            .filter(|(_, b)| b.0 <= p && p < b.1)
            .min_by_key(|(_, b)| b.1 - b.0)
            .map(|(k, _)| k)
    };
    for p in 0..view.len() {
        if view.is_test_code(p) {
            continue;
        }
        let Some(k) = owner(p) else { continue };
        let text = view.text(p);
        let prev = if p > 0 { view.text(p - 1) } else { "" };
        match text {
            "unwrap" | "expect" if prev == "." && view.text(p + 1) == "(" => {
                fns[k].panics.push(PanicSite {
                    kind: if text == "unwrap" {
                        PanicKind::Unwrap
                    } else {
                        PanicKind::Expect
                    },
                    line: view.line(p),
                });
            }
            "panic" | "todo" | "unimplemented" if view.text(p + 1) == "!" => {
                fns[k].panics.push(PanicSite {
                    kind: PanicKind::PanicMacro,
                    line: view.line(p),
                });
            }
            "[" => {
                // Indexing: `[` directly after an expression — an
                // identifier (that is not a keyword), `)`, or `]`.
                // Macro brackets (`vec![`) follow `!`, attributes
                // follow `#`, array types/literals follow punctuation.
                let indexes = (view.kind_at(p - 1) == Some(TokenKind::Ident)
                    && !KEYWORDS.contains(&prev))
                    || prev == ")"
                    || prev == "]";
                if p > 0 && indexes {
                    fns[k].panics.push(PanicSite {
                        kind: PanicKind::Index,
                        line: view.line(p),
                    });
                }
            }
            "Instant" | "SystemTime" if view.matches(p + 1, &[":", ":", "now"]) => {
                fns[k].clock_lines.push(view.line(p));
            }
            _ => {}
        }
        // Call sites (`.unwrap(` etc. stay in the list too — they
        // simply never resolve to a workspace function).
        if view.kind_at(p) == Some(TokenKind::Ident)
            && view.text(p + 1) == "("
            && prev != "fn"
            && !KEYWORDS.contains(&text)
        {
            let style = if prev == "." {
                CallStyle::Method
            } else {
                CallStyle::Free
            };
            fns[k].calls.push(CallSite {
                name: text.to_owned(),
                args: count_args(view, p + 1),
                style,
                line: view.line(p),
            });
        }
    }

    FileIndex {
        path: path.to_owned(),
        items,
        fns,
    }
}

/// Count call arguments from the opening paren at sig position `open`:
/// top-level commas plus one, zero when the parens hold nothing.
/// Commas inside a closure's `|...|` parameter list are not counted.
fn count_args(view: &FileView<'_>, open: usize) -> usize {
    let mut depth = 0i64;
    let mut commas = 0usize;
    let mut any = false;
    let mut in_pipes = false;
    let mut j = open;
    while j < view.len() {
        match view.text(j) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "|" if depth == 1 => in_pipes = !in_pipes,
            "," if depth == 1 && !in_pipes => commas += 1,
            _ => {}
        }
        if depth >= 1 && j > open {
            any = true;
        }
        j += 1;
    }
    if !any {
        0
    } else {
        commas + 1
    }
}

/// A discovered fn body, in parse order.
struct FnBody {
    sig: FnSig,
    line: u32,
    /// Half-open sig-position range of the body: `(` past the opening
    /// `{` .. past the matching `}`.
    body: (usize, usize),
}

struct Parser<'v, 'a> {
    view: &'v FileView<'a>,
    bodies: Vec<FnBody>,
}

impl Parser<'_, '_> {
    /// Parse items in `[i, end)`, functions qualified by `qual` (the
    /// enclosing impl's type). Returns the items and where the scan
    /// stopped.
    fn items(&mut self, mut i: usize, end: usize, qual: Option<&str>) -> (Vec<Item>, usize) {
        let view = self.view;
        let mut out = Vec::new();
        while i < end {
            if view.is_test_code(i) {
                i += 1;
                continue;
            }
            match view.text(i) {
                "fn" if view.kind_at(i + 1) == Some(TokenKind::Ident) => {
                    let (item, next) = self.fn_item(i, end, qual);
                    if let Some(item) = item {
                        out.push(item);
                    }
                    i = next;
                }
                "impl" => {
                    let (item, next) = self.impl_item(i, end);
                    if let Some(item) = item {
                        out.push(item);
                    }
                    i = next;
                }
                "mod" if view.kind_at(i + 1) == Some(TokenKind::Ident) => {
                    let (item, next) = self.mod_item(i, end, qual);
                    if let Some(item) = item {
                        out.push(item);
                    }
                    i = next;
                }
                "use" => {
                    let (item, next) = self.use_item(i, end);
                    out.push(item);
                    i = next;
                }
                _ => i += 1,
            }
        }
        (out, i)
    }

    /// Parse a `fn` item starting at `i` (the `fn` keyword). Returns
    /// the item (None for bodyless declarations, e.g. in traits) and
    /// the position to continue scanning from — just past the
    /// signature, so nested fns inside the body are discovered by the
    /// caller's loop (they surface as siblings; attribution of body
    /// contents uses innermost-body ownership, not the tree).
    fn fn_item(&mut self, i: usize, end: usize, qual: Option<&str>) -> (Option<Item>, usize) {
        let view = self.view;
        let name = view.text(i + 1).to_owned();
        let line = view.line(i);
        // Visibility: a `pub` within the qualifier run before `fn`
        // (`pub fn`, `pub(crate) async fn`, ...), not crossing a
        // statement or block boundary.
        let mut is_pub = false;
        let mut back = i;
        for _ in 0..6 {
            if back == 0 {
                break;
            }
            back -= 1;
            match view.text(back) {
                "pub" => {
                    is_pub = true;
                    break;
                }
                ";" | "{" | "}" => break,
                _ => {}
            }
        }
        // Skip generics after the name: `<` to its matching `>`; a `>`
        // directly preceded by `-` is part of a `->` inside a
        // higher-ranked bound (`F: Fn(u32) -> u32`) and does not close.
        let mut j = i + 2;
        if view.text(j) == "<" {
            let mut angle = 0i64;
            while j < end {
                match view.text(j) {
                    "<" => angle += 1,
                    ">" if j > 0 && view.text(j - 1) != "-" => {
                        angle -= 1;
                        if angle == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        let (params, has_self, after_params) = if view.text(j) == "(" {
            self.param_list(j, end)
        } else {
            (0, false, j)
        };
        // Between params and body: return type and/or where clause,
        // ended by `{` (body) or `;` (declaration only).
        let mut has_return = false;
        let mut j = after_params;
        let mut depth = 0i64;
        let mut body = None;
        while j < end {
            match view.text(j) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "-" if depth == 0 && view.text(j + 1) == ">" => has_return = true,
                ";" if depth == 0 => {
                    j += 1;
                    break;
                }
                "{" if depth == 0 => {
                    body = Some((j, view.skip_braces(j).min(end)));
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some((body_open, body_close)) = body else {
            return (None, j.max(i + 2));
        };
        let sig = FnSig {
            name,
            qual: qual.map(str::to_owned),
            params,
            has_self,
            has_return,
            is_pub,
        };
        self.bodies.push(FnBody {
            sig: sig.clone(),
            line,
            body: (body_open, body_close),
        });
        let item = Item {
            kind: ItemKind::Fn(sig),
            span: (i, body_close),
            line,
            children: Vec::new(),
        };
        (Some(item), i + 2)
    }

    /// Parse a parameter list starting at `i` (the `(`). Returns
    /// (param count excluding self, has_self, position past `)`).
    fn param_list(&self, i: usize, end: usize) -> (usize, bool, usize) {
        let view = self.view;
        let mut depth = 0i64;
        let mut commas = 0usize;
        let mut any = false;
        let mut j = i;
        let mut close = end;
        while j < end {
            match view.text(j) {
                "(" | "[" | "{" | "<" => depth += 1,
                ">" if j > 0 && view.text(j - 1) != "-" => depth -= 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        close = j + 1;
                        break;
                    }
                }
                "," if depth == 1 => commas += 1,
                _ if depth == 1 => any = true,
                _ => {}
            }
            j += 1;
        }
        if !any {
            return (0, false, close);
        }
        let mut params = commas + 1;
        // Trailing comma: the `,` sits directly before the closing `)`.
        if close >= 2 && view.text(close - 2) == "," {
            params -= 1;
        }
        // A `self` receiver: first parameter tokens are one of `self`,
        // `&self`, `&mut self`, `&'a self`, `mut self`, `self: Type`.
        let mut k = i + 1;
        while k < close
            && (matches!(view.text(k), "&" | "mut") || view.kind_at(k) == Some(TokenKind::Lifetime))
        {
            k += 1;
        }
        let has_self = view.text(k) == "self";
        if has_self {
            params = params.saturating_sub(1);
        }
        (params, has_self, close)
    }

    /// Parse an `impl` item at `i`: the self-type is the last ident at
    /// angle-depth 0 before the body (reset at `for`, so trait impls
    /// keep the implementing type); the body recurses.
    fn impl_item(&mut self, i: usize, end: usize) -> (Option<Item>, usize) {
        let view = self.view;
        let line = view.line(i);
        let mut j = i + 1;
        let mut angle = 0i64;
        let mut ty = String::new();
        let mut body = None;
        while j < end {
            match view.text(j) {
                "<" => angle += 1,
                ">" if view.text(j - 1) != "-" => angle -= 1,
                "for" if angle == 0 => ty.clear(),
                "{" if angle == 0 => {
                    body = Some((j, view.skip_braces(j).min(end)));
                    break;
                }
                ";" if angle == 0 => {
                    j += 1;
                    break;
                }
                t if angle == 0 && view.kind_at(j) == Some(TokenKind::Ident) && t != "where" => {
                    ty = t.to_owned();
                }
                _ => {}
            }
            j += 1;
        }
        let Some((open, close)) = body else {
            return (None, j.max(i + 1));
        };
        let inner_end = close.saturating_sub(1).max(open + 1);
        let (children, _) = self.items(open + 1, inner_end, Some(&ty));
        (
            Some(Item {
                kind: ItemKind::Impl { ty },
                span: (i, close),
                line,
                children,
            }),
            close.max(i + 1),
        )
    }

    /// Parse a `mod` item at `i`: inline bodies recurse, `mod name;`
    /// is recorded without children.
    fn mod_item(&mut self, i: usize, end: usize, qual: Option<&str>) -> (Option<Item>, usize) {
        let view = self.view;
        let line = view.line(i);
        let name = view.text(i + 1).to_owned();
        match view.text(i + 2) {
            ";" => (
                Some(Item {
                    kind: ItemKind::Mod { name },
                    span: (i, i + 3),
                    line,
                    children: Vec::new(),
                }),
                i + 3,
            ),
            "{" => {
                let close = view.skip_braces(i + 2).min(end);
                let inner_end = close.saturating_sub(1).max(i + 3);
                let (children, _) = self.items(i + 3, inner_end, qual);
                (
                    Some(Item {
                        kind: ItemKind::Mod { name },
                        span: (i, close),
                        line,
                        children,
                    }),
                    close.max(i + 3),
                )
            }
            _ => (None, i + 2),
        }
    }

    /// Parse a `use` item at `i`: the path verbatim up to `;` (or EOF).
    fn use_item(&mut self, i: usize, end: usize) -> (Item, usize) {
        let view = self.view;
        let line = view.line(i);
        let mut path = String::new();
        let mut j = i + 1;
        while j < end && view.text(j) != ";" {
            path.push_str(view.text(j));
            j += 1;
        }
        let close = (j + 1).min(end);
        (
            Item {
                kind: ItemKind::Use { path },
                span: (i, close.max(i + 1)),
                line,
                children: Vec::new(),
            },
            close.max(i + 1),
        )
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code: panics are failures
mod tests {
    use super::*;

    fn index(src: &str) -> FileIndex {
        let view = FileView::new(src);
        parse_file("crates/x/src/lib.rs", &view)
    }

    #[test]
    fn fn_signatures_parse() {
        let idx = index(
            "fn free(a: u32, b: &str) -> u32 { a }\n\
             impl Engine { fn answer(&self, req: &Request) -> Reply { todo() } }\n\
             fn unit(x: u64) { let _ = x; }\n",
        );
        assert_eq!(idx.fns.len(), 3);
        let free = &idx.fns[0];
        assert_eq!(free.sig.name, "free");
        assert_eq!(
            (free.sig.params, free.sig.has_self, free.sig.has_return),
            (2, false, true)
        );
        let answer = &idx.fns[1];
        assert_eq!(answer.display_name(), "Engine::answer");
        assert_eq!(
            (
                answer.sig.params,
                answer.sig.has_self,
                answer.sig.has_return
            ),
            (1, true, true)
        );
        let unit = &idx.fns[2];
        assert!(!unit.sig.has_return);
    }

    #[test]
    fn calls_are_attributed_to_the_innermost_fn() {
        let idx = index("fn outer() {\n    helper(1, 2);\n    fn inner() { deep(3); }\n}\n");
        let outer = idx.fns.iter().find(|f| f.sig.name == "outer").unwrap();
        let inner = idx.fns.iter().find(|f| f.sig.name == "inner").unwrap();
        assert_eq!(
            outer
                .calls
                .iter()
                .map(|c| c.name.as_str())
                .collect::<Vec<_>>(),
            vec!["helper"]
        );
        assert_eq!(outer.calls[0].args, 2);
        assert_eq!(
            inner
                .calls
                .iter()
                .map(|c| c.name.as_str())
                .collect::<Vec<_>>(),
            vec!["deep"]
        );
    }

    #[test]
    fn panic_sources_are_found() {
        let idx = index(
            "fn f(v: &[u8], o: Option<u8>) -> u8 {\n\
             let a = v[0];\n\
             let b = o.unwrap();\n\
             let c = o.expect(\"x\");\n\
             if v.is_empty() { panic!(\"empty\") }\n\
             a + b + c\n}\n",
        );
        let kinds: Vec<PanicKind> = idx.fns[0].panics.iter().map(|p| p.kind).collect();
        assert_eq!(
            kinds,
            vec![
                PanicKind::Index,
                PanicKind::Unwrap,
                PanicKind::Expect,
                PanicKind::PanicMacro
            ]
        );
    }

    #[test]
    fn non_indexing_brackets_do_not_count() {
        let idx = index(
            "fn f() -> Vec<u8> {\n\
             let v = vec![1, 2];\n\
             let _a: [u8; 2] = [0; 2];\n\
             let [x, y] = [1u8, 2];\n\
             let _ = (x, y);\n\
             v\n}\n",
        );
        assert!(idx.fns[0].panics.is_empty(), "{:?}", idx.fns[0].panics);
    }

    #[test]
    fn method_call_args_exclude_closure_pipes() {
        let idx = index("fn f(v: Vec<u32>) -> u32 { v.iter().fold(0, |acc, x| acc + x) }\n");
        let fold = idx.fns[0].calls.iter().find(|c| c.name == "fold").unwrap();
        assert_eq!(fold.args, 2);
        assert_eq!(fold.style, CallStyle::Method);
    }

    #[test]
    fn items_cover_impl_mod_use() {
        let idx = index(
            "use std::collections::BTreeMap;\n\
             mod inner { pub fn helper() -> u32 { 1 } }\n\
             impl Display for Engine { fn fmt(&self) -> Result { write(self) } }\n",
        );
        assert!(
            matches!(&idx.items[0].kind, ItemKind::Use { path } if path == "std::collections::BTreeMap")
        );
        assert!(matches!(&idx.items[1].kind, ItemKind::Mod { name } if name == "inner"));
        assert!(matches!(&idx.items[2].kind, ItemKind::Impl { ty } if ty == "Engine"));
        let helper = idx.fns.iter().find(|f| f.sig.name == "helper").unwrap();
        assert!(helper.sig.qual.is_none());
        let fmt = idx.fns.iter().find(|f| f.sig.name == "fmt").unwrap();
        assert_eq!(fmt.sig.qual.as_deref(), Some("Engine"));
    }

    #[test]
    fn clock_reads_are_recorded() {
        let idx = index("fn now_ns() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n");
        assert_eq!(idx.fns[0].clock_lines, vec![1]);
    }

    #[test]
    fn test_gated_code_is_invisible() {
        let idx = index(
            "fn real() -> u32 { 1 }\n\
             #[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); }\n}\n",
        );
        assert_eq!(idx.fns.len(), 1);
        assert_eq!(idx.fns[0].sig.name, "real");
    }

    #[test]
    fn unbalanced_input_truncates_quietly() {
        for src in [
            "fn f() {",
            "impl X {",
            "mod m {",
            "fn f(",
            "use a::b",
            "fn f() -> {",
        ] {
            let _ = index(src); // must not panic
        }
    }
}

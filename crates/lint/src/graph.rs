//! The workspace symbol index and intra-workspace call graph, plus the
//! `no-panic-in-request-path` reachability pass.
//!
//! Name resolution is deliberately approximate (DESIGN.md §14): a call
//! resolves by callee name + argument count, same-file definitions
//! first, then the whole workspace. The three outcomes are kept
//! distinct — [`Edge::Resolved`] edges are traversed, [`Edge::Ambiguous`]
//! and [`Edge::Unresolved`] edges are **not** (false negatives are
//! accepted; a false positive must always be escapable, and an edge the
//! analysis cannot prove is not evidence). Per-edge escapes
//! (`// lint: allow(no-panic-in-request-path)` on the call line) cut
//! traversal, so one reviewed call quiets everything below it.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::parse::{CallSite, CallStyle, FileIndex, FnNode};
use crate::{Diagnostic, GraphRole, Rule};

/// One file's contribution to the workspace pass: its parsed index,
/// its escape lines, and its path-derived roles.
pub(crate) struct WorkFile {
    /// Workspace-relative `/`-separated label.
    pub label: String,
    /// The parsed items and function summaries.
    pub index: FileIndex,
    /// `(line, rule)` pairs allowed by `// lint: allow(...)` escapes.
    pub escapes: BTreeSet<(u32, Rule)>,
    /// Path-derived roles (entry file, lexical no-unwrap, ordered sink).
    pub role: GraphRole,
}

/// A function's identity: (index into the file list, index into that
/// file's `fns`).
pub(crate) type NodeId = (usize, usize);

/// One call edge, after approximate resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Edge {
    /// Exactly one workspace function matches name + arity.
    Resolved(NodeId),
    /// More than one matches; the analysis refuses to guess.
    Ambiguous,
    /// Nothing in the workspace matches (std, vendored, macro-made).
    Unresolved,
}

/// The workspace call graph: files (sorted by label), and per function
/// one [`Edge`] per call site, parallel to [`FnNode::calls`].
pub(crate) struct Graph<'a> {
    pub files: &'a [WorkFile],
    /// `edges[f][k][c]` resolves `files[f].index.fns[k].calls[c]`.
    pub edges: Vec<Vec<Vec<Edge>>>,
}

impl<'a> Graph<'a> {
    /// Build the graph. `files` must already be sorted by label — node
    /// and edge order (hence diagnostic order) follows input order.
    pub fn build(files: &'a [WorkFile]) -> Graph<'a> {
        let mut by_name: BTreeMap<&str, Vec<NodeId>> = BTreeMap::new();
        for (f, wf) in files.iter().enumerate() {
            for (k, func) in wf.index.fns.iter().enumerate() {
                by_name.entry(&func.sig.name).or_default().push((f, k));
            }
        }
        let resolve = |f: usize, call: &CallSite| -> Edge {
            let Some(candidates) = by_name.get(call.name.as_str()) else {
                return Edge::Unresolved;
            };
            let fits = |&(cf, ck): &NodeId| {
                let sig = &files[cf].index.fns[ck].sig;
                let arity_ok = sig.params == call.args;
                match call.style {
                    CallStyle::Method => sig.has_self && arity_ok,
                    CallStyle::Free => !sig.has_self && arity_ok,
                }
            };
            let same: Vec<NodeId> = candidates
                .iter()
                .filter(|n| n.0 == f)
                .filter(|n| fits(n))
                .copied()
                .collect();
            let pool: Vec<NodeId> = if same.is_empty() {
                candidates.iter().filter(|n| fits(n)).copied().collect()
            } else {
                same
            };
            match pool.as_slice() {
                [] => Edge::Unresolved,
                [one] => Edge::Resolved(*one),
                _ => Edge::Ambiguous,
            }
        };
        let edges = files
            .iter()
            .enumerate()
            .map(|(f, wf)| {
                wf.index
                    .fns
                    .iter()
                    .map(|func| func.calls.iter().map(|c| resolve(f, c)).collect())
                    .collect()
            })
            .collect();
        Graph { files, edges }
    }

    /// The function behind a node id.
    pub fn node(&self, id: NodeId) -> &FnNode {
        &self.files[id.0].index.fns[id.1]
    }
}

/// `no-panic-in-request-path`: BFS over resolved edges from every
/// `pub` function in an entry file (`server`/`engine` stems); each panic
/// source in a reachable function is one finding, with the full call
/// chain from the entry rendered in the message. An edge whose call
/// line carries `// lint: allow(no-panic-in-request-path)` is not
/// traversed; a panic line carrying the escape is counted suppressed.
///
/// Panic kinds `no-unwrap` already bans lexically are skipped in files
/// under `no-unwrap` scope — there the graph rule only adds
/// indexing/slicing, everywhere else it reports all four kinds.
pub(crate) fn no_panic_in_request_path(
    graph: &Graph<'_>,
    diags: &mut Vec<Diagnostic>,
    suppressed: &mut usize,
) {
    // Every node's first-claiming chain: entries in (file, fn) order,
    // each BFS claiming still-unclaimed nodes, so a panic site is
    // reported once, against the first entry that reaches it.
    let mut chain: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
    let entries: Vec<NodeId> = graph
        .files
        .iter()
        .enumerate()
        .filter(|(_, wf)| wf.role.entry)
        .flat_map(|(f, wf)| {
            wf.index
                .fns
                .iter()
                .enumerate()
                .filter(|(_, func)| func.sig.is_pub)
                .map(move |(k, _)| (f, k))
        })
        .collect();
    for &entry in &entries {
        if chain.contains_key(&entry) {
            continue;
        }
        chain.insert(entry, vec![entry]);
        let mut queue = VecDeque::from([entry]);
        while let Some(node) = queue.pop_front() {
            let here = chain[&node].clone();
            let wf = &graph.files[node.0];
            let func = &wf.index.fns[node.1];
            for (c, call) in func.calls.iter().enumerate() {
                let Edge::Resolved(next) = graph.edges[node.0][node.1][c] else {
                    continue;
                };
                if wf
                    .escapes
                    .contains(&(call.line, Rule::NoPanicInRequestPath))
                {
                    continue; // reviewed edge: traversal stops here
                }
                if chain.contains_key(&next) {
                    continue;
                }
                let mut path = here.clone();
                path.push(next);
                chain.insert(next, path);
                queue.push_back(next);
            }
        }
    }

    for (&node, path) in &chain {
        let wf = &graph.files[node.0];
        let func = graph.node(node);
        for site in &func.panics {
            if site.kind.lexically_banned() && wf.role.lexical_nounwrap {
                continue; // no-unwrap already polices this file
            }
            if wf
                .escapes
                .contains(&(site.line, Rule::NoPanicInRequestPath))
            {
                *suppressed += 1;
                continue;
            }
            let entry_name = graph.node(path[0]).display_name();
            let message = if path.len() == 1 {
                format!(
                    "{} in request entry `{entry_name}` — the serve path must not panic \
                     (return an error or use a checked accessor)",
                    site.kind.describe(),
                )
            } else {
                let rendered: Vec<String> = path
                    .iter()
                    .map(|&n| format!("`{}`", graph.node(n).display_name()))
                    .collect();
                format!(
                    "{} reachable from request entry `{entry_name}` via {} — the serve path \
                     must not panic (return an error or use a checked accessor)",
                    site.kind.describe(),
                    rendered.join(" \u{2192} "),
                )
            };
            diags.push(Diagnostic {
                path: wf.label.clone(),
                line: site.line,
                rule: Rule::NoPanicInRequestPath,
                message,
            });
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code: panics are failures
mod tests {
    use super::*;
    use crate::parse::parse_file;
    use crate::rules::FileView;

    fn work(label: &str, src: &str) -> WorkFile {
        let view = FileView::new(src);
        let escapes = crate::parse_escapes(src, &view)
            .allowed
            .into_iter()
            .collect();
        WorkFile {
            label: label.to_owned(),
            index: parse_file(label, &view),
            escapes,
            role: crate::graph_role(label).unwrap(),
        }
    }

    fn run(files: &[WorkFile]) -> (Vec<Diagnostic>, usize) {
        let graph = Graph::build(files);
        let mut diags = Vec::new();
        let mut suppressed = 0;
        no_panic_in_request_path(&graph, &mut diags, &mut suppressed);
        (diags, suppressed)
    }

    #[test]
    fn same_file_definitions_shadow_workspace_ones() {
        let files = [
            work(
                "crates/a/src/server.rs",
                "pub fn handle() { helper(1); }\nfn helper(x: u32) { let _ = x; }\n",
            ),
            // Same name + arity elsewhere: must not make the edge
            // ambiguous, same-file resolution wins.
            work(
                "crates/b/src/layout.rs",
                "fn helper(v: &[u8]) { let _ = v[0]; }\n",
            ),
        ];
        let (diags, _) = run(&files);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn transitive_indexing_is_found_with_chain() {
        let files = [work(
            "crates/a/src/server.rs",
            "pub fn handle(v: &[u8]) { mid(v); }\n\
             fn mid(v: &[u8]) { deep(v); }\n\
             fn deep(v: &[u8]) -> u8 { v[0] }\n",
        )];
        let (diags, _) = run(&files);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, Rule::NoPanicInRequestPath);
        assert!(
            diags[0]
                .message
                .contains("`handle` \u{2192} `mid` \u{2192} `deep`"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn ambiguous_edges_are_not_traversed() {
        let files = [
            work(
                "crates/a/src/server.rs",
                "pub fn handle(x: u32) { twin(x); }\n",
            ),
            work("crates/b/src/list.rs", "fn twin(x: u32) -> u32 { x + 1 }\n"),
            work(
                "crates/c/src/journal.rs",
                "fn twin(x: u32) -> u32 { [1u8, 2][x as usize] as u32 }\n",
            ),
        ];
        let (diags, _) = run(&files);
        assert!(diags.is_empty(), "ambiguity must not fire: {diags:?}");
    }

    #[test]
    fn edge_escape_cuts_traversal_and_site_escape_suppresses() {
        let files = [work(
            "crates/a/src/server.rs",
            "pub fn handle(v: &[u8]) {\n\
             \x20   checked(v); // lint: allow(no-panic-in-request-path)\n\
             \x20   local(v);\n\
             }\n\
             fn checked(v: &[u8]) -> u8 { v[0] }\n\
             fn local(v: &[u8]) -> u8 {\n\
             \x20   v[1] // lint: allow(no-panic-in-request-path)\n\
             }\n",
        )];
        let (diags, suppressed) = run(&files);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(suppressed, 1);
    }
}

//! A small, lossless Rust lexer.
//!
//! The lexer's only job is to carve source text into spans precise
//! enough that token-level rules never mistake a comment, string
//! literal, or lifetime for code. It is deliberately not a full
//! front-end: keywords lex as [`TokenKind::Ident`], numbers are lexed
//! loosely (`1e-5` becomes three tokens), and malformed input never
//! fails — an unterminated literal simply swallows the rest of the
//! file as one token.
//!
//! Two properties are load-bearing and proptested
//! (`tests/lexer_props.rs`):
//!
//! * **totality** — `lex` never panics, on any input;
//! * **span round-trip** — concatenating `token.text` in order
//!   reproduces the input byte-for-byte, and every `token.line` equals
//!   one plus the number of newlines before `token.start`.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Spaces, tabs, newlines.
    Whitespace,
    /// `// ...` (text up to, not including, the newline).
    LineComment,
    /// `/* ... */`, nesting-aware.
    BlockComment,
    /// `"..."`, `b"..."`, `c"..."` with escape handling.
    Str,
    /// `r"..."`, `r#"..."#`, `br#"..."#`, any number of `#`s.
    RawStr,
    /// `'a'`, `'\n'`, `b'x'`.
    CharLit,
    /// `'a`, `'static` — a quote followed by an identifier with no
    /// closing quote.
    Lifetime,
    /// Identifiers and keywords, including raw identifiers (`r#fn`).
    Ident,
    /// Numeric literals (lexed loosely; suffixes are included).
    Number,
    /// Any single punctuation or operator character.
    Punct,
}

/// One lexed token: kind, exact source slice, byte offset, 1-based line.
#[derive(Debug, Clone, Copy)]
pub struct Token<'a> {
    /// What this token is.
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: &'a str,
    /// Byte offset of the token's first byte.
    pub start: usize,
    /// 1-based line number of the token's first byte.
    pub line: u32,
}

impl Token<'_> {
    /// True for whitespace and comments — tokens the rules skip over.
    pub fn is_trivia(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    }
}

/// Lex `src` into a complete, contiguous token stream.
pub fn lex(src: &str) -> Vec<Token<'_>> {
    Lexer {
        src,
        pos: 0,
        line: 1,
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token<'a>> {
        let mut out = Vec::new();
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let kind = self.next_kind();
            debug_assert!(self.pos > start, "lexer must always make progress");
            out.push(Token {
                kind,
                text: &self.src[start..self.pos],
                start,
                line,
            });
            self.line += self.src[start..self.pos]
                .bytes()
                .filter(|&b| b == b'\n')
                .count() as u32;
        }
        out
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn peek2(&self) -> Option<char> {
        self.rest().chars().nth(1)
    }

    fn bump(&mut self) {
        if let Some(c) = self.peek() {
            self.pos += c.len_utf8();
        }
    }

    /// Consume one token's worth of input, returning its kind.
    fn next_kind(&mut self) -> TokenKind {
        let c = match self.peek() {
            Some(c) => c,
            None => return TokenKind::Whitespace, // unreachable: run() checks
        };
        match c {
            c if c.is_whitespace() => {
                while self.peek().is_some_and(char::is_whitespace) {
                    self.bump();
                }
                TokenKind::Whitespace
            }
            '/' if self.peek2() == Some('/') => {
                while self.peek().is_some_and(|c| c != '\n') {
                    self.bump();
                }
                TokenKind::LineComment
            }
            '/' if self.peek2() == Some('*') => {
                self.bump();
                self.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (self.peek(), self.peek2()) {
                        (Some('/'), Some('*')) => {
                            self.bump();
                            self.bump();
                            depth += 1;
                        }
                        (Some('*'), Some('/')) => {
                            self.bump();
                            self.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => self.bump(),
                        (None, _) => break, // unterminated: swallow the rest
                    }
                }
                TokenKind::BlockComment
            }
            '"' => self.cooked_string(),
            '\'' => self.quote(),
            c if c == '_' || c.is_alphabetic() => self.ident_or_prefixed(),
            c if c.is_ascii_digit() => self.number(),
            _ => {
                self.bump();
                TokenKind::Punct
            }
        }
    }

    /// A `"`-delimited string with `\` escapes; the opening quote has
    /// not been consumed yet.
    fn cooked_string(&mut self) -> TokenKind {
        self.bump(); // opening quote
        loop {
            match self.peek() {
                None => break, // unterminated
                Some('\\') => {
                    self.bump();
                    self.bump(); // the escaped char (may be a quote)
                }
                Some('"') => {
                    self.bump();
                    break;
                }
                Some(_) => self.bump(),
            }
        }
        TokenKind::Str
    }

    /// A raw string starting at the current position's `r` (the prefix
    /// ident, if any, has already been consumed by the caller): consume
    /// `#`s, the quote, then scan for `"` followed by the same number
    /// of `#`s.
    fn raw_string_body(&mut self) -> TokenKind {
        let mut hashes = 0usize;
        while self.peek() == Some('#') {
            hashes += 1;
            self.bump();
        }
        if self.peek() == Some('"') {
            self.bump();
            'scan: loop {
                match self.peek() {
                    None => break, // unterminated
                    Some('"') => {
                        self.bump();
                        let mut seen = 0usize;
                        while seen < hashes {
                            if self.peek() == Some('#') {
                                self.bump();
                                seen += 1;
                            } else {
                                continue 'scan;
                            }
                        }
                        break;
                    }
                    Some(_) => self.bump(),
                }
            }
        }
        TokenKind::RawStr
    }

    /// A `'`: char literal, lifetime, or a stray quote.
    fn quote(&mut self) -> TokenKind {
        self.bump(); // the quote
        match self.peek() {
            // Escaped char literal: consume the escape, then scan to the
            // closing quote (covers multi-char escapes like `\u{1F600}`).
            Some('\\') => {
                self.bump();
                self.bump();
                while self.peek().is_some_and(|c| c != '\'' && c != '\n') {
                    self.bump();
                }
                self.bump(); // closing quote (no-op at EOF/newline)
                TokenKind::CharLit
            }
            // Identifier-shaped: `'a'` is a char literal, `'a`/`'static`
            // a lifetime.
            Some(c) if c == '_' || c.is_alphabetic() => {
                while self.peek().is_some_and(|c| c == '_' || c.is_alphanumeric()) {
                    self.bump();
                }
                if self.peek() == Some('\'') {
                    self.bump();
                    TokenKind::CharLit
                } else {
                    TokenKind::Lifetime
                }
            }
            // Any other single char closed by a quote: `'('`, `'0'`.
            Some(_) if self.peek2() == Some('\'') => {
                self.bump();
                self.bump();
                TokenKind::CharLit
            }
            // A quote with nothing literal after it; treat as punct.
            _ => TokenKind::Punct,
        }
    }

    /// An identifier, or a string/char literal introduced by a prefix
    /// identifier (`r""`, `b""`, `br#""#`, `b''`, `r#ident`).
    fn ident_or_prefixed(&mut self) -> TokenKind {
        let start = self.pos;
        while self.peek().is_some_and(|c| c == '_' || c.is_alphanumeric()) {
            self.bump();
        }
        let ident = &self.src[start..self.pos];
        match (ident, self.peek()) {
            ("r" | "br" | "cr", Some('"' | '#')) => {
                // `r#foo` is a raw identifier, not a raw string: one `#`
                // followed by an identifier character and no quote.
                if ident == "r" && self.peek() == Some('#') {
                    let after = self.rest().chars().nth(1);
                    if after.is_some_and(|c| c == '_' || c.is_alphabetic()) {
                        self.bump(); // '#'
                        while self.peek().is_some_and(|c| c == '_' || c.is_alphanumeric()) {
                            self.bump();
                        }
                        return TokenKind::Ident;
                    }
                }
                // Only lex as a raw string when a quote actually follows
                // the hashes; `br#!` stays an ident + punct stream.
                let mut probe = self.rest().chars();
                let mut ahead = probe.next();
                while ahead == Some('#') {
                    ahead = probe.next();
                }
                if ahead == Some('"') {
                    self.raw_string_body()
                } else {
                    TokenKind::Ident
                }
            }
            ("b" | "c", Some('"')) => self.cooked_string(),
            ("b", Some('\'')) => self.quote(),
            _ => TokenKind::Ident,
        }
    }

    /// A numeric literal, lexed loosely: digits, `_`, alphanumeric
    /// suffixes, and a `.` only when directly followed by a digit.
    fn number(&mut self) -> TokenKind {
        while self.peek().is_some_and(|c| c == '_' || c.is_alphanumeric()) {
            self.bump();
        }
        if self.peek() == Some('.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            while self.peek().is_some_and(|c| c == '_' || c.is_alphanumeric()) {
                self.bump();
            }
        }
        TokenKind::Number
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code: panics are failures
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .filter(|t| !t.is_trivia())
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn round_trip_is_exact() {
        let src = "fn main() { let s = \"hi \\\" there\"; } // done\n/* block /* nested */ */";
        let joined: String = lex(src).iter().map(|t| t.text).collect();
        assert_eq!(joined, src);
    }

    #[test]
    fn comments_and_strings_are_not_code() {
        let toks = kinds("let x = \"unwrap()\"; // unwrap()\n/* unwrap() */");
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokenKind::Ident || !t.contains("unwrap")));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks.contains(&(TokenKind::Lifetime, "'a")));
        assert!(toks.contains(&(TokenKind::CharLit, "'x'")));
    }

    #[test]
    fn raw_strings_swallow_quotes() {
        let toks = kinds(r####"let s = r#"a "quoted" unwrap()"#; s"####);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::RawStr).count(),
            1
        );
        // Only the trailing `s` and `let`/`=`/`;` survive as code.
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokenKind::Ident || !t.contains("unwrap")));
    }

    #[test]
    fn raw_idents_are_idents() {
        let toks = kinds("let r#fn = 1; r#while");
        assert!(toks.contains(&(TokenKind::Ident, "r#fn")));
        assert!(toks.contains(&(TokenKind::Ident, "r#while")));
    }

    #[test]
    fn byte_and_c_strings() {
        let toks = kinds(r##"b"bytes" c"cstr" br#"raw"# b'x'"##);
        assert_eq!(toks[0], (TokenKind::Str, "b\"bytes\""));
        assert_eq!(toks[1], (TokenKind::Str, "c\"cstr\""));
        assert_eq!(toks[2], (TokenKind::RawStr, "br#\"raw\"#"));
        assert_eq!(toks[3], (TokenKind::CharLit, "b'x'"));
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        for src in ["\"abc", "r#\"abc", "/* abc", "'\\n", "b\"", "'"] {
            let joined: String = lex(src).iter().map(|t| t.text).collect();
            assert_eq!(joined, src, "round trip failed for {src:?}");
        }
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n  c");
        let c = toks.iter().find(|t| t.text == "c").unwrap();
        assert_eq!(c.line, 3);
    }

    #[test]
    fn escaped_quote_in_char_literal() {
        let toks = kinds(r"'\'' x");
        assert_eq!(toks[0], (TokenKind::CharLit, r"'\''"));
        assert_eq!(toks[1], (TokenKind::Ident, "x"));
    }
}

//! Integration coverage for droplens-obs: histogram edge cases,
//! concurrent counters, span nesting, and the JSON report shape.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code: panics are failures
use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use droplens_obs::{Histogram, Registry, RunReport};

#[test]
fn empty_histogram_has_no_quantiles() {
    let h = Histogram::new();
    assert_eq!(h.count(), 0);
    assert_eq!(h.min(), None);
    assert_eq!(h.max(), None);
    assert_eq!(h.quantile(0.5), None);
    let s = h.summary();
    assert_eq!(s.count, 0);
    assert_eq!((s.min, s.max, s.p50, s.p90, s.p99), (0, 0, 0, 0, 0));
}

#[test]
fn single_sample_is_every_quantile() {
    let h = Histogram::new();
    h.record(37);
    for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
        assert_eq!(h.quantile(q), Some(37), "q={q}");
    }
    let s = h.summary();
    assert_eq!((s.count, s.sum, s.min, s.max), (1, 37, 37, 37));
    assert_eq!((s.p50, s.p90, s.p99), (37, 37, 37));
}

#[test]
fn zero_samples_land_in_the_zero_bucket() {
    let h = Histogram::new();
    h.record(0);
    h.record(0);
    assert_eq!(h.quantile(0.5), Some(0));
    assert_eq!(h.min(), Some(0));
    assert_eq!(h.max(), Some(0));
}

#[test]
fn overflow_bucket_samples_clamp_to_observed_max() {
    let h = Histogram::new();
    // Far beyond the last finite bucket boundary (2^62).
    h.record(u64::MAX);
    h.record(u64::MAX - 1);
    assert_eq!(h.quantile(0.99), Some(u64::MAX));
    assert_eq!(h.min(), Some(u64::MAX - 1));
    // The estimate never exceeds the observed extremes even though the
    // overflow bucket nominally spans to u64::MAX.
    assert!(h.quantile(0.01).unwrap() >= u64::MAX - 1);
}

#[test]
fn quantiles_are_within_a_bucket_of_truth() {
    let h = Histogram::new();
    for v in 1..=1000u64 {
        h.record(v);
    }
    // Log-bucket estimation: correct bucket, so within a factor of two.
    let p50 = h.quantile(0.5).unwrap();
    assert!((256..=1000).contains(&p50), "p50={p50}");
    let p99 = h.quantile(0.99).unwrap();
    assert!((512..=1000).contains(&p99), "p99={p99}");
    assert_eq!(h.quantile(1.0), Some(1000));
    assert_eq!(h.quantile(0.0), Some(1));
    assert_eq!(h.sum(), 500500);
}

#[test]
fn duration_recording_saturates() {
    let h = Histogram::new();
    h.record_duration(Duration::from_nanos(1500));
    h.record_duration(Duration::MAX); // > u64::MAX ns
    assert_eq!(h.count(), 2);
    assert_eq!(h.max(), Some(u64::MAX));
    assert_eq!(h.min(), Some(1500));
}

#[test]
fn concurrent_counter_increments_are_lossless() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let registry = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let registry = Arc::clone(&registry);
            thread::spawn(move || {
                // Resolve once, update often — the intended hot path.
                let c = registry.counter("shared");
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
    assert_eq!(
        registry.counter("shared").value(),
        THREADS as u64 * PER_THREAD
    );
}

#[test]
fn concurrent_histogram_records_are_lossless() {
    let registry = Arc::new(Registry::new());
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let registry = Arc::clone(&registry);
            thread::spawn(move || {
                let h = registry.histogram("latency");
                for i in 0..1000u64 {
                    h.record(t * 1000 + i);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
    assert_eq!(registry.histogram("latency").count(), 4000);
}

#[test]
fn span_nesting_order_is_reflected_in_paths() {
    let r = Registry::new();
    {
        let _a = r.span("outer");
        {
            let _b = r.span("mid");
            let _c = r.span("inner");
        }
        // After the nested pair closes, new spans nest under `outer` only.
        let _d = r.span("second");
    }
    let report = r.report();
    let paths: Vec<&str> = report.spans.keys().map(String::as_str).collect();
    assert_eq!(
        paths,
        vec!["outer", "outer/mid", "outer/mid/inner", "outer/second"]
    );
    // A parent's total covers its children.
    assert!(report.spans["outer"].total_ns >= report.spans["outer/mid"].total_ns);
}

#[test]
fn spans_nest_per_thread_not_across_threads() {
    let registry = Arc::new(Registry::new());
    let outer = registry.span("main_thread");
    let r2 = Arc::clone(&registry);
    thread::spawn(move || {
        // Opened on a different thread: no `main_thread/` prefix.
        let s = r2.span("worker");
        assert_eq!(s.path(), "worker");
    })
    .join()
    .expect("worker panicked");
    drop(outer);
    let report = registry.report();
    assert!(report.spans.contains_key("worker"));
    assert!(report.spans.contains_key("main_thread"));
}

#[test]
fn json_report_is_stable_and_escaped() {
    let r = Registry::new();
    r.counter("b.count").add(2);
    r.counter("a.count").inc();
    r.gauge("depth").set(-3);
    r.histogram("lat").record(8);
    r.record_span("stage/sub", Duration::from_nanos(500));
    r.error_sample("src", "bad \"line\"\n1");
    let mut report = r.report();
    report.meta.insert("seed".to_owned(), "42".to_owned());

    let expected = concat!(
        "{\"schema\":\"droplens-obs/1\",",
        "\"meta\":{\"seed\":\"42\"},",
        "\"counters\":{\"a.count\":1,\"b.count\":2},",
        "\"gauges\":{\"depth\":-3},",
        "\"histograms\":{\"lat\":{\"count\":1,\"sum\":8,\"min\":8,\"max\":8,",
        "\"p50\":8,\"p90\":8,\"p99\":8}},",
        "\"spans\":{\"stage/sub\":{\"count\":1,\"total_ns\":500,\"mean_ns\":500}},",
        "\"errors\":{\"src\":{\"seen\":1,\"samples\":[\"bad \\\"line\\\"\\n1\"]}}}\n",
    );
    assert_eq!(report.to_json(), expected);
    // Same registry state → byte-identical document.
    let mut again = r.report();
    again.meta.insert("seed".to_owned(), "42".to_owned());
    assert_eq!(again.to_json(), expected);
}

#[test]
fn text_report_renders_all_sections() {
    let r = Registry::new();
    r.counter("records").add(7);
    r.gauge("pool").set(5);
    r.histogram("lat").record(100);
    r.record_span("stage", Duration::from_millis(2));
    r.error_sample("parser", "oops");
    let mut report = r.report();
    report.meta.insert("scale".to_owned(), "small".to_owned());
    let text = report.to_text();
    for needle in ["scale", "stage", "records", "pool", "lat", "parser", "oops"] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}

#[test]
fn empty_run_report_defaults() {
    let report = RunReport {
        meta: BTreeMap::new(),
        ..RunReport::default()
    };
    assert!(report.is_empty());
    assert!(report.to_json().contains("\"counters\":{}"));
}

//! Plain-text table and series rendering for the experiment outputs.
//!
//! The bench harness prints each experiment in the same shape the paper
//! reports it: fixed-width tables for Table 1/2-style results, `(x, y)`
//! series for the figures. Keeping rendering here keeps the experiment
//! modules purely computational.

use std::fmt::Write as _;

/// A fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> TextTable {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; it is padded or truncated to the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut TextTable {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// A named `(x, y)` series, rendered as CSV.
#[derive(Debug, Clone)]
pub struct Series {
    /// Series name (CSV header for the y column).
    pub name: String,
    /// Data points.
    pub points: Vec<(String, f64)>,
}

impl Series {
    /// An empty series.
    pub fn new(name: impl Into<String>) -> Series {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: impl ToString, y: f64) {
        self.points.push((x.to_string(), y));
    }

    /// Final y value, if any.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|(_, y)| *y)
    }
}

/// Render aligned series (sharing x values) as a CSV block.
pub fn render_series_csv(x_name: &str, series: &[Series]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{x_name}");
    for s in series {
        let _ = write!(out, ",{}", s.name);
    }
    out.push('\n');
    let rows = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
    for i in 0..rows {
        let x = series
            .iter()
            .find_map(|s| s.points.get(i).map(|(x, _)| x.clone()))
            .unwrap_or_default();
        let _ = write!(out, "{x}");
        for s in series {
            match s.points.get(i) {
                Some((_, y)) => {
                    let _ = write!(out, ",{y:.4}");
                }
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

/// `12.5%`-style formatting with one decimal, the paper's convention.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// `x of y` counts with the percentage, e.g. `42.5% of 186`.
pub fn rate(numerator: usize, denominator: usize) -> String {
    if denominator == 0 {
        return "n/a".to_owned();
    }
    format!(
        "{} of {}",
        pct(numerator as f64 / denominator as f64),
        denominator
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["Region", "Rate"]);
        t.row(vec!["AFRINIC", "11.8%"]);
        t.row(vec!["RIPE NCC", "33.0%"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "Region    Rate");
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines[2], "AFRINIC   11.8%");
        assert_eq!(lines[3], "RIPE NCC  33.0%");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["1"]);
        assert!(t.render().contains('1'));
    }

    #[test]
    fn series_csv() {
        let mut a = Series::new("signed");
        a.push("2020-01", 1.5);
        a.push("2020-02", 2.0);
        let mut b = Series::new("routed");
        b.push("2020-01", 1.0);
        b.push("2020-02", 1.75);
        let csv = render_series_csv("month", &[a.clone(), b]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "month,signed,routed");
        assert_eq!(lines[1], "2020-01,1.5000,1.0000");
        assert_eq!(lines[2], "2020-02,2.0000,1.7500");
        assert_eq!(a.last(), Some(2.0));
    }

    #[test]
    fn pct_and_rate() {
        assert_eq!(pct(0.425), "42.5%");
        assert_eq!(rate(79, 186), "42.5% of 186");
        assert_eq!(rate(1, 0), "n/a");
    }
}

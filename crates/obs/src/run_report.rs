//! The run report: a plain-data snapshot of a registry, renderable as a
//! human text summary or a stable machine-readable JSON document.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::json::JsonObject;
use crate::metrics::HistogramSummary;
use crate::registry::{ErrorLog, SpanStat};
use crate::report::TextTable;

/// Everything a registry knew at snapshot time.
///
/// Produced by [`crate::Registry::report`]; `meta` is caller-populated
/// (seed, scale, command line) and travels into both renderings.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Free-form run context (seed, scale, ...), caller-populated.
    pub meta: BTreeMap<String, String>,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Span timings by nested path.
    pub spans: BTreeMap<String, SpanStat>,
    /// Error tallies by source.
    pub errors: BTreeMap<String, ErrorLog>,
}

/// Render nanoseconds the way `Duration`'s `Debug` does (`1.23ms`).
fn ns(n: u64) -> String {
    format!("{:?}", Duration::from_nanos(n))
}

impl RunReport {
    /// True when nothing was recorded (meta is ignored).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
            && self.errors.is_empty()
    }

    /// Human-readable multi-section summary.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if !self.meta.is_empty() {
            let mut t = TextTable::new(vec!["meta", "value"]);
            for (k, v) in &self.meta {
                t.row(vec![k.as_str(), v.as_str()]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }
        if !self.spans.is_empty() {
            let mut t = TextTable::new(vec!["span", "count", "total", "mean"]);
            for (path, s) in &self.spans {
                t.row(vec![
                    path.clone(),
                    s.count.to_string(),
                    ns(s.total_ns),
                    ns(s.mean_ns()),
                ]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }
        if !self.counters.is_empty() {
            let mut t = TextTable::new(vec!["counter", "value"]);
            for (k, v) in &self.counters {
                t.row(vec![k.clone(), v.to_string()]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }
        if !self.gauges.is_empty() {
            let mut t = TextTable::new(vec!["gauge", "value"]);
            for (k, v) in &self.gauges {
                t.row(vec![k.clone(), v.to_string()]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }
        if !self.histograms.is_empty() {
            let mut t = TextTable::new(vec![
                "histogram",
                "count",
                "min",
                "p50",
                "p90",
                "p99",
                "max",
            ]);
            for (k, h) in &self.histograms {
                t.row(vec![
                    k.clone(),
                    h.count.to_string(),
                    h.min.to_string(),
                    h.p50.to_string(),
                    h.p90.to_string(),
                    h.p99.to_string(),
                    h.max.to_string(),
                ]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }
        if !self.errors.is_empty() {
            let mut t = TextTable::new(vec!["errors", "seen", "first samples"]);
            for (k, e) in &self.errors {
                t.row(vec![k.clone(), e.seen.to_string(), e.samples.join(" | ")]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }

    /// Stable machine-readable JSON (schema `droplens-obs/1`).
    ///
    /// Key order is deterministic (maps are sorted by name, field order
    /// is fixed), so identical runs produce byte-identical documents —
    /// suitable for committing as `BENCH_<date>.json`.
    pub fn to_json(&self) -> String {
        let mut root = JsonObject::new();
        root.field_str("schema", "droplens-obs/1");

        let mut meta = JsonObject::new();
        for (k, v) in &self.meta {
            meta.field_str(k, v);
        }
        root.field_object("meta", meta);

        let mut counters = JsonObject::new();
        for (k, v) in &self.counters {
            counters.field_u64(k, *v);
        }
        root.field_object("counters", counters);

        let mut gauges = JsonObject::new();
        for (k, v) in &self.gauges {
            gauges.field_i64(k, *v);
        }
        root.field_object("gauges", gauges);

        let mut histograms = JsonObject::new();
        for (k, h) in &self.histograms {
            let mut o = JsonObject::new();
            o.field_u64("count", h.count)
                .field_u64("sum", h.sum)
                .field_u64("min", h.min)
                .field_u64("max", h.max)
                .field_u64("p50", h.p50)
                .field_u64("p90", h.p90)
                .field_u64("p99", h.p99);
            histograms.field_object(k, o);
        }
        root.field_object("histograms", histograms);

        let mut spans = JsonObject::new();
        for (k, s) in &self.spans {
            let mut o = JsonObject::new();
            o.field_u64("count", s.count)
                .field_u64("total_ns", s.total_ns)
                .field_u64("mean_ns", s.mean_ns());
            spans.field_object(k, o);
        }
        root.field_object("spans", spans);

        let mut errors = JsonObject::new();
        for (k, e) in &self.errors {
            let mut o = JsonObject::new();
            o.field_u64("seen", e.seen)
                .field_str_array("samples", &e.samples);
            errors.field_object(k, o);
        }
        root.field_object("errors", errors);

        let mut out = root.finish();
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_renders() {
        let r = RunReport::default();
        assert!(r.is_empty());
        assert_eq!(r.to_text(), "(no metrics recorded)\n");
        assert!(r.to_json().starts_with("{\"schema\":\"droplens-obs/1\""));
    }
}

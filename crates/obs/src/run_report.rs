//! The run report: a plain-data snapshot of a registry, renderable as a
//! human text summary or a stable machine-readable JSON document.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::json::{self, JsonObject, Value};
use crate::metrics::HistogramSummary;
use crate::registry::{ErrorLog, SpanStat};
use crate::report::TextTable;

/// One row of the hierarchical rollup over span paths.
///
/// Recorded spans already *include* the wall-clock of spans nested under
/// them (an RAII span is open while its children run), so a recorded
/// path's rollup is simply its own total. The rollup exists for paths
/// that were never recorded themselves but have recorded descendants —
/// `reproduce/experiments` when only `reproduce/experiments/fig1..` were
/// timed: their rollup is the sum of their direct children's rollups,
/// making `a` and `a/b` consistently related in every report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanRollup {
    /// The directly recorded stat (zeroed for synthesized interior
    /// nodes).
    pub own: SpanStat,
    /// Own total when recorded, else the sum of direct children rollups.
    pub rollup_ns: u64,
    /// Bytes allocated: own when recorded, else the sum of direct
    /// children rollups (same rule as `rollup_ns` — a recorded RAII
    /// span's counters already include its children's).
    pub rollup_alloc_bytes: u64,
    /// Bytes freed, aggregated like `rollup_alloc_bytes`.
    pub rollup_freed_bytes: u64,
}

/// Everything a registry knew at snapshot time.
///
/// Produced by [`crate::Registry::report`]; `meta` is caller-populated
/// (seed, scale, command line) and travels into both renderings.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Free-form run context (seed, scale, ...), caller-populated.
    pub meta: BTreeMap<String, String>,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Span timings by nested path.
    pub spans: BTreeMap<String, SpanStat>,
    /// Error tallies by source.
    pub errors: BTreeMap<String, ErrorLog>,
}

/// Render nanoseconds the way `Duration`'s `Debug` does (`1.23ms`).
fn ns(n: u64) -> String {
    format!("{:?}", Duration::from_nanos(n))
}

impl RunReport {
    /// True when nothing was recorded (meta is ignored).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
            && self.errors.is_empty()
    }

    /// Human-readable multi-section summary.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if !self.meta.is_empty() {
            let mut t = TextTable::new(vec!["meta", "value"]);
            for (k, v) in &self.meta {
                t.row(vec![k.as_str(), v.as_str()]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }
        if !self.spans.is_empty() {
            let mut t = TextTable::new(vec!["span", "count", "total", "mean", "rollup", "alloc"]);
            for (path, r) in self.span_rollups() {
                let (count, total, mean) = if r.own.count > 0 {
                    (
                        r.own.count.to_string(),
                        ns(r.own.total_ns),
                        ns(r.own.mean_ns()),
                    )
                } else {
                    // Synthesized interior node: no direct recordings.
                    ("-".to_owned(), "-".to_owned(), "-".to_owned())
                };
                // Byte column only when a tracking allocator recorded
                // anything — timing-only reports keep a quiet table.
                let alloc = if r.rollup_alloc_bytes > 0 {
                    crate::alloc::format_bytes(r.rollup_alloc_bytes)
                } else {
                    "-".to_owned()
                };
                t.row(vec![path, count, total, mean, ns(r.rollup_ns), alloc]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }
        if !self.counters.is_empty() {
            let mut t = TextTable::new(vec!["counter", "value"]);
            for (k, v) in &self.counters {
                t.row(vec![k.clone(), v.to_string()]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }
        if !self.gauges.is_empty() {
            let mut t = TextTable::new(vec!["gauge", "value"]);
            for (k, v) in &self.gauges {
                t.row(vec![k.clone(), v.to_string()]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }
        if !self.histograms.is_empty() {
            let mut t = TextTable::new(vec![
                "histogram",
                "count",
                "min",
                "p50",
                "p90",
                "p99",
                "max",
            ]);
            for (k, h) in &self.histograms {
                t.row(vec![
                    k.clone(),
                    h.count.to_string(),
                    h.min.to_string(),
                    h.p50.to_string(),
                    h.p90.to_string(),
                    h.p99.to_string(),
                    h.max.to_string(),
                ]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }
        if !self.errors.is_empty() {
            let mut t = TextTable::new(vec!["errors", "seen", "first samples"]);
            for (k, e) in &self.errors {
                t.row(vec![k.clone(), e.seen.to_string(), e.samples.join(" | ")]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }

    /// The hierarchical rollup over span paths: every recorded path plus
    /// synthesized interior nodes for unrecorded ancestors, so nested
    /// paths always aggregate under their parent prefix. See
    /// [`SpanRollup`] for the aggregation rule.
    pub fn span_rollups(&self) -> BTreeMap<String, SpanRollup> {
        let mut out: BTreeMap<String, SpanRollup> = BTreeMap::new();
        for (path, stat) in &self.spans {
            out.insert(
                path.clone(),
                SpanRollup {
                    own: *stat,
                    rollup_ns: stat.total_ns,
                    rollup_alloc_bytes: stat.alloc_bytes,
                    rollup_freed_bytes: stat.freed_bytes,
                },
            );
            // Synthesize every missing ancestor.
            let mut prefix = path.as_str();
            while let Some(cut) = prefix.rfind('/') {
                prefix = &prefix[..cut];
                out.entry(prefix.to_owned()).or_default();
            }
        }
        // Children sort strictly after their parent, so a reverse pass
        // sees every child's final rollup before its parent.
        let paths: Vec<String> = out.keys().cloned().collect();
        for path in paths.iter().rev() {
            let r = out[path];
            if r.own.count > 0 {
                continue; // recorded totals already include descendants
            }
            let prefix = format!("{path}/");
            let (sum_ns, sum_alloc, sum_freed) = out
                .iter()
                .filter(|(p, _)| {
                    p.strip_prefix(&prefix)
                        .is_some_and(|rest| !rest.contains('/'))
                })
                .fold((0u64, 0u64, 0u64), |(ns, ab, fb), (_, c)| {
                    (
                        ns + c.rollup_ns,
                        ab + c.rollup_alloc_bytes,
                        fb + c.rollup_freed_bytes,
                    )
                });
            if let Some(r) = out.get_mut(path) {
                r.rollup_ns = sum_ns;
                r.rollup_alloc_bytes = sum_alloc;
                r.rollup_freed_bytes = sum_freed;
            }
        }
        out
    }

    /// Look up a path's rollup total in nanoseconds (0 when the path has
    /// neither recordings nor recorded descendants).
    pub fn rollup_ns(&self, path: &str) -> u64 {
        self.span_rollups().get(path).map_or(0, |r| r.rollup_ns)
    }

    /// Stable machine-readable JSON (schema `droplens-obs/1`).
    ///
    /// Key order is deterministic (maps are sorted by name, field order
    /// is fixed), so identical runs produce byte-identical documents —
    /// suitable for committing as `BENCH_<date>.json`.
    pub fn to_json(&self) -> String {
        let mut root = JsonObject::new();
        root.field_str("schema", "droplens-obs/1");

        let mut meta = JsonObject::new();
        for (k, v) in &self.meta {
            meta.field_str(k, v);
        }
        root.field_object("meta", meta);

        let mut counters = JsonObject::new();
        for (k, v) in &self.counters {
            counters.field_u64(k, *v);
        }
        root.field_object("counters", counters);

        let mut gauges = JsonObject::new();
        for (k, v) in &self.gauges {
            gauges.field_i64(k, *v);
        }
        root.field_object("gauges", gauges);

        let mut histograms = JsonObject::new();
        for (k, h) in &self.histograms {
            let mut o = JsonObject::new();
            o.field_u64("count", h.count)
                .field_u64("sum", h.sum)
                .field_u64("min", h.min)
                .field_u64("max", h.max)
                .field_u64("p50", h.p50)
                .field_u64("p90", h.p90)
                .field_u64("p99", h.p99);
            histograms.field_object(k, o);
        }
        root.field_object("histograms", histograms);

        let mut spans = JsonObject::new();
        for (k, s) in &self.spans {
            let mut o = JsonObject::new();
            o.field_u64("count", s.count)
                .field_u64("total_ns", s.total_ns)
                .field_u64("mean_ns", s.mean_ns());
            // Byte columns appear only when recorded, so timing-only
            // documents stay byte-identical to pre-mem reports.
            if s.alloc_bytes > 0 || s.freed_bytes > 0 {
                o.field_u64("alloc_bytes", s.alloc_bytes)
                    .field_u64("freed_bytes", s.freed_bytes);
            }
            spans.field_object(k, o);
        }
        root.field_object("spans", spans);

        let mut errors = JsonObject::new();
        for (k, e) in &self.errors {
            let mut o = JsonObject::new();
            o.field_u64("seen", e.seen)
                .field_str_array("samples", &e.samples);
            errors.field_object(k, o);
        }
        root.field_object("errors", errors);

        let mut out = root.finish();
        out.push('\n');
        out
    }

    /// Parse a report back from its [`RunReport::to_json`] document —
    /// how `droplens perf diff` loads the two sides it compares.
    /// Unknown top-level fields are ignored; a malformed document or a
    /// wrong schema tag is an error.
    pub fn from_json(text: &str) -> Result<RunReport, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        match doc.get("schema").and_then(Value::as_str) {
            Some("droplens-obs/1") => {}
            Some(other) => return Err(format!("unsupported schema {other:?}")),
            None => return Err("missing \"schema\" field".to_owned()),
        }
        let section = |name: &str| doc.get(name).map(Value::members).unwrap_or(&[]).iter();
        let need_u64 = |v: &Value, what: &str, key: &str| {
            v.as_u64()
                .ok_or_else(|| format!("{what} {key:?}: not a u64"))
        };
        let mut report = RunReport::default();
        for (k, v) in section("meta") {
            let s = v
                .as_str()
                .ok_or_else(|| format!("meta {k:?}: not a string"))?;
            report.meta.insert(k.clone(), s.to_owned());
        }
        for (k, v) in section("counters") {
            report
                .counters
                .insert(k.clone(), need_u64(v, "counter", k)?);
        }
        for (k, v) in section("gauges") {
            let n = v
                .as_i64()
                .ok_or_else(|| format!("gauge {k:?}: not an i64"))?;
            report.gauges.insert(k.clone(), n);
        }
        for (k, v) in section("histograms") {
            let field = |name: &str| {
                need_u64(
                    v.get(name).unwrap_or(&Value::Num(0.0)),
                    "histogram field",
                    name,
                )
            };
            report.histograms.insert(
                k.clone(),
                HistogramSummary {
                    count: field("count")?,
                    sum: field("sum")?,
                    min: field("min")?,
                    max: field("max")?,
                    p50: field("p50")?,
                    p90: field("p90")?,
                    p99: field("p99")?,
                },
            );
        }
        for (k, v) in section("spans") {
            let count = need_u64(v.get("count").unwrap_or(&Value::Null), "span", k)?;
            let total_ns = need_u64(v.get("total_ns").unwrap_or(&Value::Null), "span", k)?;
            // Optional: absent in timing-only documents.
            let alloc_bytes = v.get("alloc_bytes").and_then(Value::as_u64).unwrap_or(0);
            let freed_bytes = v.get("freed_bytes").and_then(Value::as_u64).unwrap_or(0);
            report.spans.insert(
                k.clone(),
                SpanStat {
                    count,
                    total_ns,
                    alloc_bytes,
                    freed_bytes,
                },
            );
        }
        for (k, v) in section("errors") {
            let seen = need_u64(v.get("seen").unwrap_or(&Value::Null), "error", k)?;
            let samples = match v.get("samples") {
                Some(Value::Array(items)) => items
                    .iter()
                    .map(|s| {
                        s.as_str()
                            .map(str::to_owned)
                            .ok_or_else(|| format!("error {k:?}: non-string sample"))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                _ => Vec::new(),
            };
            report.errors.insert(k.clone(), ErrorLog { seen, samples });
        }
        Ok(report)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code: panics are failures
mod tests {
    use super::*;

    #[test]
    fn empty_report_renders() {
        let r = RunReport::default();
        assert!(r.is_empty());
        assert_eq!(r.to_text(), "(no metrics recorded)\n");
        assert!(r.to_json().starts_with("{\"schema\":\"droplens-obs/1\""));
    }

    fn stat(count: u64, total_ns: u64) -> SpanStat {
        SpanStat {
            count,
            total_ns,
            ..SpanStat::default()
        }
    }

    fn stat_mem(count: u64, total_ns: u64, alloc_bytes: u64, freed_bytes: u64) -> SpanStat {
        SpanStat {
            count,
            total_ns,
            alloc_bytes,
            freed_bytes,
        }
    }

    #[test]
    fn rollups_synthesize_unrecorded_ancestors() {
        let mut r = RunReport::default();
        r.spans.insert("run/exp/fig1".into(), stat(1, 100));
        r.spans.insert("run/exp/fig2".into(), stat(2, 300));
        r.spans.insert("run/load".into(), stat(1, 50));
        let rollups = r.span_rollups();
        // `run/exp` was never recorded: synthesized from its children.
        let exp = &rollups["run/exp"];
        assert_eq!(exp.own.count, 0);
        assert_eq!(exp.rollup_ns, 400);
        // `run` itself was never recorded either: children are its
        // *direct* children's rollups (run/exp + run/load), not a double
        // count of the leaves.
        assert_eq!(rollups["run"].rollup_ns, 450);
        assert_eq!(r.rollup_ns("run"), 450);
        assert_eq!(r.rollup_ns("absent"), 0);
    }

    #[test]
    fn recorded_parents_keep_their_own_total_as_rollup() {
        // An RAII parent span's total already includes its children;
        // its rollup must not add them again.
        let mut r = RunReport::default();
        r.spans.insert("study".into(), stat(1, 1000));
        r.spans.insert("study/load".into(), stat(1, 400));
        r.spans.insert("study/index".into(), stat(1, 500));
        let rollups = r.span_rollups();
        assert_eq!(rollups["study"].rollup_ns, 1000);
        assert_eq!(rollups["study"].own.count, 1);
    }

    #[test]
    fn rollups_aggregate_byte_columns() {
        // Synthesized ancestors sum the byte columns of their direct
        // children — rollup totals equal the sum of the leaf spans.
        let mut r = RunReport::default();
        r.spans
            .insert("run/exp/fig1".into(), stat_mem(1, 100, 4096, 1024));
        r.spans
            .insert("run/exp/fig2".into(), stat_mem(2, 300, 8192, 2048));
        r.spans.insert("run/load".into(), stat_mem(1, 50, 512, 0));
        let rollups = r.span_rollups();
        let leaves_alloc = 4096 + 8192;
        let leaves_freed = 1024 + 2048;
        assert_eq!(rollups["run/exp"].rollup_alloc_bytes, leaves_alloc);
        assert_eq!(rollups["run/exp"].rollup_freed_bytes, leaves_freed);
        assert_eq!(rollups["run"].rollup_alloc_bytes, leaves_alloc + 512);
        assert_eq!(rollups["run"].rollup_freed_bytes, leaves_freed);
        // A recorded parent keeps its own bytes (they already include
        // the children's) instead of double-counting.
        let mut r2 = RunReport::default();
        r2.spans
            .insert("study".into(), stat_mem(1, 1000, 10_000, 0));
        r2.spans
            .insert("study/load".into(), stat_mem(1, 400, 6_000, 0));
        assert_eq!(r2.span_rollups()["study"].rollup_alloc_bytes, 10_000);
    }

    #[test]
    fn span_table_shows_alloc_column() {
        let mut r = RunReport::default();
        r.spans
            .insert("run/a".into(), stat_mem(1, 1_000_000, 3 << 20, 1 << 20));
        r.spans.insert("run/b".into(), stat(1, 1_000));
        let text = r.to_text();
        assert!(text.contains("alloc"), "{text}");
        assert!(text.contains("3.0MiB"), "{text}");
        // Timing-only rows show a dash, not 0B.
        assert!(
            text.lines()
                .any(|l| l.starts_with("run/b") && l.ends_with('-')),
            "{text}"
        );
    }

    #[test]
    fn json_round_trips_byte_columns() {
        let mut r = RunReport::default();
        r.spans
            .insert("run/load".into(), stat_mem(1, 500, 2048, 1024));
        r.spans.insert("run/plain".into(), stat(1, 100));
        let json = r.to_json();
        assert!(json.contains("\"alloc_bytes\":2048"), "{json}");
        // Timing-only spans omit the byte fields entirely.
        assert!(!json.contains("\"alloc_bytes\":0"), "{json}");
        let back = RunReport::from_json(&json).expect("parses");
        assert_eq!(back.spans, r.spans);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn rollups_do_not_mix_sibling_name_prefixes() {
        // "a" and "ab" share a string prefix but not a path prefix.
        let mut r = RunReport::default();
        r.spans.insert("a/x".into(), stat(1, 10));
        r.spans.insert("ab/x".into(), stat(1, 20));
        let rollups = r.span_rollups();
        assert_eq!(rollups["a"].rollup_ns, 10);
        assert_eq!(rollups["ab"].rollup_ns, 20);
    }

    #[test]
    fn span_table_shows_rollup_column() {
        let mut r = RunReport::default();
        r.spans.insert("run/a".into(), stat(1, 1_000_000));
        let text = r.to_text();
        assert!(text.contains("rollup"), "{text}");
        // Synthesized interior row for `run` with only a rollup.
        assert!(
            text.lines()
                .any(|l| l.starts_with("run ") && l.contains('-')),
            "{text}"
        );
    }

    #[test]
    fn json_round_trips_through_from_json() {
        let mut r = RunReport::default();
        r.meta.insert("seed".into(), "42".into());
        r.counters.insert("bgp.parsed".into(), 7);
        r.gauges.insert("depth".into(), -3);
        r.histograms.insert(
            "lat".into(),
            HistogramSummary {
                count: 2,
                sum: 30,
                min: 10,
                max: 20,
                p50: 10,
                p90: 20,
                p99: 20,
            },
        );
        r.spans.insert("run/load".into(), stat(3, 1234));
        r.errors.insert(
            "bgp".into(),
            ErrorLog {
                seen: 2,
                samples: vec!["line 3: bad \"prefix\"".into()],
            },
        );
        let json = r.to_json();
        let back = RunReport::from_json(&json).expect("parses");
        assert_eq!(back.meta, r.meta);
        assert_eq!(back.counters, r.counters);
        assert_eq!(back.gauges, r.gauges);
        assert_eq!(back.histograms, r.histograms);
        assert_eq!(back.spans, r.spans);
        assert_eq!(back.errors, r.errors);
        // Byte-stable round trip.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(RunReport::from_json("not json").is_err());
        assert!(RunReport::from_json("{}").is_err());
        assert!(RunReport::from_json("{\"schema\":\"other/9\"}").is_err());
        let bad_span = r#"{"schema":"droplens-obs/1","spans":{"x":{"count":"q"}}}"#;
        assert!(RunReport::from_json(bad_span).is_err());
    }
}

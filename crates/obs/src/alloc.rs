//! droplens-mem: an allocation-tracking `#[global_allocator]` wrapper
//! with per-thread shard counters and per-span attribution.
//!
//! [`TrackingAlloc`] wraps any [`GlobalAlloc`] (normally
//! [`std::alloc::System`]) and charges every allocation and free to a
//! fixed-size array of **shards**, one per thread. The hot path is a
//! handful of relaxed loads and stores on the calling thread's own
//! cache line — no locks, no compare-and-swap, no allocation (the
//! allocator must never re-enter itself).
//!
//! # Shard ownership
//!
//! Each thread picks a shard index on its first allocation (a single
//! `fetch_add` on a global counter, cached in a const-initialized
//! `thread_local` so the lookup never allocates and never runs a TLS
//! destructor) and from then on *only that thread* writes that shard:
//! allocations charge the allocating thread's shard, frees charge the
//! *freeing* thread's shard. Cross-thread frees therefore leave a
//! shard's own live-byte count (`alloc - freed`) negative sometimes;
//! the process-wide sum is still exact. Single-writer shards are what
//! make plain relaxed load/store updates sound — there is no RMW to
//! lose. Indices wrap modulo [`MAX_SHARDS`]; concurrent threads get
//! distinct shards as long as at most [`MAX_SHARDS`] are alive at once
//! (the pipeline's scoped pools stay far below that), while shards of
//! exited threads are safely reused because dead threads no longer
//! write.
//!
//! # Per-span attribution
//!
//! [`mark`]/[`MemMark::finish`] bracket a region of one thread's
//! execution: the delta carries bytes allocated, bytes freed, and the
//! **peak** net-allocation excursion inside the region. Peaks compose
//! across nesting with a save/rebase/restore stack discipline: a mark
//! saves the shard's current span-peak, rebases it to the present live
//! level, and `finish` restores `max(saved, inner peak)` — so an outer
//! span's peak always includes whatever its inner spans reached. The
//! tracer opens a mark per trace span ([`crate::trace::TraceGuard`])
//! and [`crate::Span`] reads the cumulative counters, which is how
//! every span in a trace carries `alloc_bytes`/`freed_bytes`/
//! `peak_delta` and every registry path carries byte columns.
//!
//! Attribution is per-thread: a parser span running on a pool worker
//! charges the worker's shard, and its trace span (adopted under the
//! scheduling stage, see [`crate::trace::Tracer::adopt`]) carries those
//! bytes — memory rolls up the worker→stage hierarchy exactly like
//! time does.
//!
//! # Determinism
//!
//! Counts of bytes allocated/freed are a function of the work, not the
//! schedule, so they are stable across `DROPLENS_THREADS` settings for
//! the deterministic pipeline. Live-byte *timelines* and peak values
//! depend on scheduling and are advisory. Nothing here ever writes to
//! stdout.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering::Relaxed};

use crate::registry::Registry;

/// How many thread shards exist. Thread→shard assignment wraps modulo
/// this, so counters stay exact while at most this many threads are
/// alive concurrently.
pub const MAX_SHARDS: usize = 128;

/// One thread's counters, padded to a cache line so neighbouring
/// threads never false-share.
#[repr(align(64))]
struct Shard {
    /// Bytes this thread allocated (cumulative).
    alloc_bytes: AtomicU64,
    /// Allocation calls this thread made.
    alloc_ops: AtomicU64,
    /// Bytes this thread freed (cumulative; may exceed `alloc_bytes`
    /// when it frees another thread's allocations).
    freed_bytes: AtomicU64,
    /// Free calls this thread made.
    freed_ops: AtomicU64,
    /// High-water of this thread's net allocation (`alloc - freed`),
    /// rebased by [`mark`] for span attribution.
    span_peak: AtomicI64,
    /// Monotone high-water of this thread's net allocation, never
    /// rebased — summed into [`MemSnapshot::peak_live_bytes`].
    shard_peak: AtomicI64,
}

// `static` arrays need a const item to repeat; the interior mutability
// is exactly the point (each element is a fresh zeroed shard).
#[allow(clippy::declare_interior_mutable_const)]
const ZERO_SHARD: Shard = Shard {
    alloc_bytes: AtomicU64::new(0),
    alloc_ops: AtomicU64::new(0),
    freed_bytes: AtomicU64::new(0),
    freed_ops: AtomicU64::new(0),
    span_peak: AtomicI64::new(0),
    shard_peak: AtomicI64::new(0),
};

static SHARDS: [Shard; MAX_SHARDS] = [ZERO_SHARD; MAX_SHARDS];

/// Total threads that ever claimed a shard (not capped by
/// [`MAX_SHARDS`]; indices wrap).
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

/// Set by the first tracked allocation. While false, [`mark`] and
/// [`thread_counts`] return `None`, so binaries *without* the tracking
/// allocator installed (unit-test runners, downstream users of the
/// library) skip attribution entirely.
static ACTIVE: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// This thread's shard index; `usize::MAX` until first use. Const
    /// init + no destructor: accessing it can never allocate or panic
    /// during thread teardown.
    static SHARD_IDX: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// This thread's shard, claiming an index on first use. Falls back to
/// shard 0 if TLS is unavailable (thread teardown) — counts then merge
/// into the main thread's shard rather than being dropped.
#[inline]
fn shard() -> &'static Shard {
    let idx = SHARD_IDX
        .try_with(|c| {
            let v = c.get();
            if v != usize::MAX {
                return v;
            }
            let v = NEXT_SHARD.fetch_add(1, Relaxed) % MAX_SHARDS;
            c.set(v);
            v
        })
        .unwrap_or(0);
    // lint: allow(no-panic-in-request-path) — shard index is reduced mod MAX_SHARDS on assignment
    &SHARDS[idx]
}

/// Single-writer update: `a += delta` as a relaxed load/store pair.
/// Sound because each shard field is only ever written by its owning
/// thread (see the module docs on shard ownership).
#[inline]
fn bump_u64(a: &AtomicU64, delta: u64) -> u64 {
    let v = a.load(Relaxed).wrapping_add(delta);
    a.store(v, Relaxed);
    v
}

/// Raise `a` to `v` if `v` is higher (single-writer, like [`bump_u64`]).
#[inline]
fn raise_i64(a: &AtomicI64, v: i64) {
    if v > a.load(Relaxed) {
        a.store(v, Relaxed);
    }
}

#[inline]
fn on_alloc(size: usize) {
    if !ACTIVE.load(Relaxed) {
        ACTIVE.store(true, Relaxed);
    }
    let s = shard();
    let alloc = bump_u64(&s.alloc_bytes, size as u64);
    bump_u64(&s.alloc_ops, 1);
    let live = alloc as i64 - s.freed_bytes.load(Relaxed) as i64;
    raise_i64(&s.span_peak, live);
    raise_i64(&s.shard_peak, live);
}

#[inline]
fn on_free(size: usize) {
    let s = shard();
    bump_u64(&s.freed_bytes, size as u64);
    bump_u64(&s.freed_ops, 1);
}

/// An allocation-tracking wrapper around another allocator, installed
/// as the `#[global_allocator]` of the binaries that want memory
/// observability:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: droplens_obs::alloc::TrackingAlloc =
///     droplens_obs::alloc::TrackingAlloc::system();
/// ```
///
/// Every call delegates to the inner allocator and then charges the
/// calling thread's shard — a few relaxed atomics on an exclusively
/// owned cache line, cheap enough to leave compiled in unconditionally
/// (the `--mem` flags only control *reporting*, never collection).
#[derive(Debug, Default, Clone, Copy)]
pub struct TrackingAlloc<A = System> {
    inner: A,
}

impl TrackingAlloc<System> {
    /// Track on top of the system allocator.
    pub const fn system() -> TrackingAlloc<System> {
        TrackingAlloc { inner: System }
    }
}

impl<A> TrackingAlloc<A> {
    /// Track on top of an arbitrary inner allocator.
    pub const fn new(inner: A) -> TrackingAlloc<A> {
        TrackingAlloc { inner }
    }
}

// The one unsafe impl in the workspace: `GlobalAlloc` is an unsafe
// trait, so wrapping the system allocator cannot be written without it.
// The impl adds no unsafe operations of its own — every call forwards
// to the inner allocator under the caller's contract, and the counter
// updates are safe atomics.
#[allow(unsafe_code)]
unsafe impl<A: GlobalAlloc> GlobalAlloc for TrackingAlloc<A> {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = self.inner.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = self.inner.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.inner.dealloc(ptr, layout);
        on_free(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = self.inner.realloc(ptr, layout, new_size);
        if !p.is_null() {
            on_free(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// Whether a [`TrackingAlloc`] has recorded at least one allocation in
/// this process — i.e. whether attribution data exists.
pub fn is_active() -> bool {
    ACTIVE.load(Relaxed)
}

/// A thread's cumulative allocation counters at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemCounts {
    /// Bytes allocated by this thread so far.
    pub alloc_bytes: u64,
    /// Bytes freed by this thread so far.
    pub freed_bytes: u64,
}

/// The calling thread's cumulative counters, or `None` when no tracking
/// allocator is installed. Subtract two readings for a region's
/// alloc/freed delta (no peak — use [`mark`] for that).
pub fn thread_counts() -> Option<MemCounts> {
    if !is_active() {
        return None;
    }
    let s = shard();
    Some(MemCounts {
        alloc_bytes: s.alloc_bytes.load(Relaxed),
        freed_bytes: s.freed_bytes.load(Relaxed),
    })
}

/// The calling thread's current net allocation (`alloc - freed`),
/// negative when it has freed more cross-thread memory than it
/// allocated. Sampled into `live_bytes` trace counters.
pub fn thread_live_bytes() -> i64 {
    let s = shard();
    s.alloc_bytes.load(Relaxed) as i64 - s.freed_bytes.load(Relaxed) as i64
}

/// An open attribution region on one thread (see the module docs for
/// the peak stack discipline). Obtain with [`mark`], close with
/// [`MemMark::finish`] on the *same thread*, in LIFO order with any
/// nested marks — exactly the discipline RAII guards already enforce.
#[derive(Debug)]
pub struct MemMark {
    shard: usize,
    base_alloc: u64,
    base_freed: u64,
    base_live: i64,
    saved_peak: i64,
}

/// What a region did to memory, per [`MemMark::finish`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemDelta {
    /// Bytes allocated on the marking thread inside the region.
    pub alloc_bytes: u64,
    /// Bytes freed on the marking thread inside the region.
    pub freed_bytes: u64,
    /// Highest net allocation above the region's starting level.
    pub peak_delta: u64,
}

/// Open an attribution region on the calling thread. `None` when no
/// tracking allocator is active (so instrumentation stays free for
/// binaries without one).
pub fn mark() -> Option<MemMark> {
    if !is_active() {
        return None;
    }
    let idx = SHARD_IDX.try_with(Cell::get).unwrap_or(0);
    let idx = if idx == usize::MAX {
        // The thread has not allocated yet; claim its shard now so the
        // mark and later allocations agree on where to look.
        let _ = shard();
        SHARD_IDX.try_with(Cell::get).unwrap_or(0)
    } else {
        idx
    };
    let s = &SHARDS[idx]; // lint: allow(no-panic-in-request-path) — idx is reduced mod MAX_SHARDS above
    let base_alloc = s.alloc_bytes.load(Relaxed);
    let base_freed = s.freed_bytes.load(Relaxed);
    let base_live = base_alloc as i64 - base_freed as i64;
    let saved_peak = s.span_peak.load(Relaxed);
    s.span_peak.store(base_live, Relaxed);
    Some(MemMark {
        shard: idx,
        base_alloc,
        base_freed,
        base_live,
        saved_peak,
    })
}

impl MemMark {
    /// Close the region and return its delta, restoring the outer
    /// region's peak so nesting composes.
    pub fn finish(self) -> MemDelta {
        let s = &SHARDS[self.shard];
        let alloc = s.alloc_bytes.load(Relaxed);
        let freed = s.freed_bytes.load(Relaxed);
        let inner_peak = s.span_peak.load(Relaxed);
        s.span_peak.store(self.saved_peak.max(inner_peak), Relaxed);
        MemDelta {
            alloc_bytes: alloc.saturating_sub(self.base_alloc),
            freed_bytes: freed.saturating_sub(self.base_freed),
            peak_delta: u64::try_from(inner_peak - self.base_live).unwrap_or(0),
        }
    }
}

/// Process-wide totals across every shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemSnapshot {
    /// Bytes allocated, all threads.
    pub alloc_bytes: u64,
    /// Allocation calls, all threads.
    pub alloc_ops: u64,
    /// Bytes freed, all threads.
    pub freed_bytes: u64,
    /// Free calls, all threads.
    pub freed_ops: u64,
    /// Net allocation right now (`alloc - freed`).
    pub live_bytes: i64,
    /// Sum of per-thread high-waters — an upper bound on the true
    /// concurrent peak (threads rarely peak simultaneously).
    pub peak_live_bytes: i64,
    /// Threads that ever claimed a shard.
    pub threads: u64,
}

/// Sum every shard. Exact once worker threads have joined; advisory
/// (each shard internally consistent, the sum racing ongoing work)
/// while they run.
pub fn snapshot() -> MemSnapshot {
    let mut out = MemSnapshot {
        threads: NEXT_SHARD.load(Relaxed) as u64,
        ..MemSnapshot::default()
    };
    for s in &SHARDS {
        out.alloc_bytes = out.alloc_bytes.wrapping_add(s.alloc_bytes.load(Relaxed));
        out.alloc_ops = out.alloc_ops.wrapping_add(s.alloc_ops.load(Relaxed));
        out.freed_bytes = out.freed_bytes.wrapping_add(s.freed_bytes.load(Relaxed));
        out.freed_ops = out.freed_ops.wrapping_add(s.freed_ops.load(Relaxed));
        out.peak_live_bytes = out
            .peak_live_bytes
            .saturating_add(s.shard_peak.load(Relaxed));
    }
    out.live_bytes = out.alloc_bytes as i64 - out.freed_bytes as i64;
    out
}

impl MemSnapshot {
    /// One-line human summary for `--mem` stderr output.
    pub fn summary(&self) -> String {
        let rss = match peak_rss_bytes() {
            Some(b) => format_bytes(b),
            None => "n/a".to_owned(),
        };
        format!(
            "mem: {} allocated in {} ops, {} freed in {} ops, {} live, \
             peak(shards) {}, peak RSS {rss}, {} thread(s)",
            format_bytes(self.alloc_bytes),
            self.alloc_ops,
            format_bytes(self.freed_bytes),
            self.freed_ops,
            format_bytes_i64(self.live_bytes),
            format_bytes_i64(self.peak_live_bytes),
            self.threads,
        )
    }
}

/// The process's peak resident set, sampled from `/proc/self/status`
/// (`VmHWM`). `None` off Linux or when the file is unreadable.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Record the current snapshot (and peak RSS, when sampled) as `mem.*`
/// gauges in `registry` — how `--mem` folds memory into run reports.
/// Gauges clamp at `i64::MAX`, far beyond any real byte count.
pub fn record_gauges(registry: &Registry) {
    let snap = snapshot();
    let as_i64 = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
    registry
        .gauge("mem.alloc_bytes")
        .set(as_i64(snap.alloc_bytes));
    registry.gauge("mem.alloc_ops").set(as_i64(snap.alloc_ops));
    registry
        .gauge("mem.freed_bytes")
        .set(as_i64(snap.freed_bytes));
    registry.gauge("mem.freed_ops").set(as_i64(snap.freed_ops));
    registry.gauge("mem.live_bytes").set(snap.live_bytes);
    registry
        .gauge("mem.peak_live_bytes")
        .set(snap.peak_live_bytes);
    registry.gauge("mem.threads").set(as_i64(snap.threads));
    if let Some(rss) = peak_rss_bytes() {
        registry.gauge("mem.peak_rss_bytes").set(as_i64(rss));
    }
}

/// Render a byte count with a binary-unit suffix (`1.5MiB`, `640KiB`,
/// `17B`).
pub fn format_bytes(n: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    if n < 1024 {
        return format!("{n}B");
    }
    let mut v = n as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit + 1 < UNITS.len() {
        v /= 1024.0;
        unit += 1;
    }
    format!("{v:.1}{}", UNITS[unit])
}

/// Signed variant of [`format_bytes`] for live-byte readings.
pub fn format_bytes_i64(n: i64) -> String {
    if n < 0 {
        format!("-{}", format_bytes(n.unsigned_abs()))
    } else {
        format_bytes(n as u64)
    }
}

/// The power-of-two byte bucket containing `n`, rendered as a half-open
/// range (`512.0KiB..1.0MiB`), with exact zero kept exact — the memory
/// analogue of the trace tree's duration buckets: deterministic under
/// allocator jitter, informative about magnitude.
pub fn byte_bucket(n: u64) -> String {
    if n == 0 {
        return "0".to_owned();
    }
    let exp = 63 - n.leading_zeros();
    let lo = 1u64 << exp;
    let hi = lo.saturating_mul(2);
    format!("{}..{}", format_bytes(lo), format_bytes(hi))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code: panics are failures
mod tests {
    use super::*;

    // NOTE: these unit tests run in a binary *without* the tracking
    // allocator installed, so they drive the shard machinery manually;
    // the real allocator path is covered end-to-end by `tests/mem.rs`,
    // which installs its own `#[global_allocator]`.

    #[test]
    fn manual_charges_flow_through_marks() {
        // Drive the shard machinery directly (as the allocator would).
        let before = snapshot();
        let m = {
            on_alloc(0); // activates tracking without skewing byte counts
            mark().expect("active after first charge")
        };
        on_alloc(1000);
        on_alloc(500);
        on_free(200);
        let d = m.finish();
        assert_eq!(d.alloc_bytes, 1500);
        assert_eq!(d.freed_bytes, 200);
        // Peak hit after both allocations, before the free.
        assert!(d.peak_delta >= 1300, "{}", d.peak_delta);
        let after = snapshot();
        assert!(after.alloc_bytes >= before.alloc_bytes + 1500);
        assert!(after.alloc_ops > before.alloc_ops);
    }

    #[test]
    fn nested_marks_restore_outer_peak() {
        on_alloc(0);
        let outer = mark().unwrap();
        on_alloc(4096);
        on_free(4096);
        let inner = mark().unwrap();
        on_alloc(512);
        on_free(512);
        let di = inner.finish();
        assert!(di.peak_delta >= 512 && di.peak_delta < 4096, "{di:?}");
        let do_ = outer.finish();
        // The outer peak saw the 4096 excursion even though the inner
        // mark rebased the shard's span peak in between.
        assert!(do_.peak_delta >= 4096, "{do_:?}");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(format_bytes(17), "17B");
        assert_eq!(format_bytes(1536), "1.5KiB");
        assert_eq!(format_bytes(3 << 20), "3.0MiB");
        assert_eq!(format_bytes_i64(-2048), "-2.0KiB");
        assert_eq!(byte_bucket(0), "0");
        assert_eq!(byte_bucket(1), "1B..2B");
        assert_eq!(byte_bucket(1500), "1.0KiB..2.0KiB");
        assert_eq!(byte_bucket(1 << 20), "1.0MiB..2.0MiB");
    }

    #[test]
    fn peak_rss_parses_on_linux() {
        // On Linux the file exists and VmHWM is present for any live
        // process; elsewhere the function degrades to None.
        if cfg!(target_os = "linux") {
            let rss = peak_rss_bytes().expect("VmHWM readable");
            assert!(rss > 0);
        }
    }
}

//! droplens-trace: hierarchical tracing with per-worker timelines.
//!
//! Where [`crate::Span`] aggregates wall-clock per *path*, the tracer
//! records every individual span as an event carrying a parent id, the
//! worker thread that ran it, and typed attributes (source, item counts,
//! queue-wait). The result is a timeline, not a summary: load it into
//! Perfetto / `chrome://tracing` ([`Trace::to_chrome_json`]) to see
//! where wall-clock goes across workers, or render the deterministic
//! text tree ([`Trace::to_text_tree`]) for test assertions.
//!
//! # Recording model
//!
//! Tracing is **off by default** and costs one atomic load per
//! instrumentation site while off. When enabled, events are pushed into
//! **per-thread buffers** (a `thread_local` `Vec` — no locks, no atomics
//! on the hot path); a buffer flushes into the tracer's shared sink when
//! its thread exits, and [`Tracer::drain`] flushes the calling thread
//! before taking the sink. The pipeline's worker threads are scoped, so
//! by the time the orchestrating thread drains, every worker has flushed.
//!
//! # Hierarchy across threads
//!
//! Each thread keeps a stack of open trace-span ids; a new span's parent
//! is the top of the stack. Fork-join helpers propagate the spawning
//! thread's current span to their workers ([`Tracer::adopt`] /
//! [`Tracer::span_under`]), so a parser span opened on a worker links
//! under the `load` stage that scheduled it, not under a disconnected
//! root.
//!
//! ```
//! use droplens_obs::trace::Tracer;
//! let tracer = Tracer::new();
//! tracer.enable();
//! {
//!     let _outer = tracer.span("study", "stage");
//!     let mut inner = tracer.span("load", "stage");
//!     inner.arg_u64("items", 3);
//! }
//! let trace = tracer.drain();
//! assert_eq!(trace.events.len(), 2);
//! assert!(trace.to_text_tree().contains("load"));
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::json::JsonObject;

/// A typed attribute value on a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer (counts, nanoseconds).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Free-form string (source labels, locations).
    Str(String),
}

impl ArgValue {
    fn render(&self) -> String {
        match self {
            ArgValue::U64(v) => v.to_string(),
            ArgValue::I64(v) => v.to_string(),
            ArgValue::F64(v) => v.to_string(),
            ArgValue::Str(s) => s.clone(),
        }
    }
}

/// What kind of event was recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A duration span (begin..end).
    Span,
    /// A point-in-time marker (quarantine hit, repair applied).
    Instant,
    /// A sampled counter value (per-worker `live_bytes` timelines) —
    /// exported as a Chrome `ph:"C"` counter track, excluded from the
    /// text tree and coverage.
    Counter,
}

/// One recorded trace event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Unique id within the tracer (1-based, allocation order).
    pub id: u64,
    /// Id of the enclosing span (0 = root).
    pub parent: u64,
    /// Event name (`load`, `parse.bgp`, `par.task`, ...).
    pub name: String,
    /// Coarse category (`stage`, `parse`, `par`, `ingest`, ...).
    pub cat: &'static str,
    /// Worker-thread timeline the event ran on (registration order;
    /// the first thread to record is 0).
    pub tid: u64,
    /// Start, nanoseconds since the tracer's epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Span or instant.
    pub kind: EventKind,
    /// Typed attributes, in insertion order.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl TraceEvent {
    fn end_ns(&self) -> u64 {
        self.ts_ns.saturating_add(self.dur_ns)
    }
}

/// One thread's slice of the trace, registered with the tracer so
/// [`Tracer::drain`] can collect it without relying on TLS destructors
/// (scoped threads signal their join *before* TLS drops run, so a
/// destructor-flush design loses a race against the draining thread).
/// Only the owning thread ever locks its shard between drains, so the
/// mutex is uncontended — an atomic CAS, no blocking on the hot path.
type Shard = Arc<Mutex<Vec<TraceEvent>>>;

#[derive(Debug)]
struct TracerInner {
    enabled: AtomicBool,
    epoch: Instant,
    next_id: AtomicU64,
    next_tid: AtomicU64,
    shards: Mutex<Vec<Shard>>,
}

impl Default for TracerInner {
    fn default() -> Self {
        TracerInner {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            next_tid: AtomicU64::new(0),
            shards: Mutex::new(Vec::new()),
        }
    }
}

/// A hierarchical trace recorder. Cloning is one `Arc`; all clones feed
/// the same per-thread shards. Disabled tracers record nothing and cost
/// one atomic load per call.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

/// This thread's handle to its shard: owned by one tracer at a time.
struct LocalBuf {
    tracer: Arc<TracerInner>,
    tid: u64,
    shard: Shard,
}

thread_local! {
    /// Per-thread shard handle (the shard itself outlives the thread).
    static LOCAL_BUF: RefCell<Option<LocalBuf>> = const { RefCell::new(None) };
    /// Ids of the trace spans currently open on this thread, outermost
    /// first. Shared across tracers, mirroring [`crate::span`]'s stack:
    /// nesting reflects dynamic call structure.
    static TRACE_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

impl Tracer {
    /// A fresh, disabled tracer.
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// Start recording. Events from spans opened before the call are
    /// not retroactively recorded.
    pub fn enable(&self) {
        self.inner.enabled.store(true, Ordering::Release);
    }

    /// Stop recording (already-open guards still record on drop).
    pub fn disable(&self) {
        self.inner.enabled.store(false, Ordering::Release);
    }

    /// Whether events are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Acquire)
    }

    /// The id of the innermost trace span open on *this thread* (0 when
    /// none). Fork-join helpers capture this before spawning and hand it
    /// to [`Tracer::span_under`] / [`Tracer::adopt`] on the worker.
    pub fn current(&self) -> u64 {
        TRACE_STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
    }

    /// Open a span under this thread's innermost open span.
    pub fn span(&self, name: impl Into<String>, cat: &'static str) -> TraceGuard {
        let parent = if self.is_enabled() { self.current() } else { 0 };
        self.span_under(parent, name, cat)
    }

    /// Open a span under an explicit parent id (cross-thread linkage).
    /// The new span is pushed on this thread's stack, so spans opened
    /// inside it nest under it.
    pub fn span_under(
        &self,
        parent: u64,
        name: impl Into<String>,
        cat: &'static str,
    ) -> TraceGuard {
        if !self.is_enabled() {
            return TraceGuard { state: None };
        }
        // Register the thread now, not at the drop-time push: open order
        // follows the fork-join hierarchy (a stage opens before the
        // workers it spawns), so timeline ids stay deterministic instead
        // of depending on which span happens to *finish* first.
        self.register_thread();
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let depth = TRACE_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let depth = s.len();
            s.push(id);
            depth
        });
        TraceGuard {
            state: Some(GuardState {
                tracer: self.clone(),
                id,
                parent,
                name: name.into(),
                cat,
                start: Instant::now(),
                depth,
                args: Vec::new(),
                // When a tracking allocator is installed, every trace
                // span doubles as a memory attribution region.
                mem: crate::alloc::mark(),
            }),
        }
    }

    /// Adopt `parent` as this thread's innermost span without recording
    /// an event — how fork-join workers inherit the spawning thread's
    /// context. The guard pops it again on drop.
    pub fn adopt(&self, parent: u64) -> AdoptGuard {
        if !self.is_enabled() || parent == 0 {
            return AdoptGuard { depth: None };
        }
        self.register_thread();
        let depth = TRACE_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let depth = s.len();
            s.push(parent);
            depth
        });
        AdoptGuard { depth: Some(depth) }
    }

    /// Record a point-in-time event under this thread's innermost span.
    pub fn instant(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if !self.is_enabled() {
            return;
        }
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let ts_ns = saturating_ns(self.inner.epoch.elapsed());
        self.push(TraceEvent {
            id,
            parent: self.current(),
            name: name.into(),
            cat,
            tid: 0, // filled by push
            ts_ns,
            dur_ns: 0,
            kind: EventKind::Instant,
            args,
        });
    }

    /// Ensure this thread has a shard (and timeline id) registered with
    /// this tracer, returning the id. Registration locks the shard list
    /// once per thread; afterwards only the thread's own shard is locked.
    fn register_thread(&self) -> u64 {
        LOCAL_BUF.with(|cell| {
            let mut cell = cell.borrow_mut();
            if let Some(buf) = cell.as_ref() {
                if Arc::ptr_eq(&buf.tracer, &self.inner) {
                    return buf.tid;
                }
            }
            let tid = self.inner.next_tid.fetch_add(1, Ordering::Relaxed);
            let shard: Shard = Arc::new(Mutex::new(Vec::with_capacity(256)));
            crate::registry::lock(&self.inner.shards).push(Arc::clone(&shard));
            *cell = Some(LocalBuf {
                tracer: Arc::clone(&self.inner),
                tid,
                shard,
            });
            tid
        })
    }

    /// Append `event` to this thread's shard, registering the thread on
    /// first use. The shard mutex is only ever contended by a concurrent
    /// [`Tracer::drain`], which the pipeline runs after workers joined.
    fn push(&self, mut event: TraceEvent) {
        let tid = self.register_thread();
        LOCAL_BUF.with(|cell| {
            let cell = cell.borrow();
            if let Some(buf) = cell.as_ref() {
                event.tid = tid;
                crate::registry::lock(&buf.shard).push(event);
            }
        });
    }

    /// Take every recorded event, sorted by start time (ties by id).
    /// Safe to call while workers are gone or idle; events pushed after
    /// the drain accumulate toward the next one.
    pub fn drain(&self) -> Trace {
        let shards: Vec<Shard> = crate::registry::lock(&self.inner.shards).clone();
        let mut events = Vec::new();
        for shard in shards {
            events.append(&mut crate::registry::lock(&shard));
        }
        events.sort_by_key(|e| (e.ts_ns, e.id));
        Trace { events }
    }
}

/// The process-wide tracer the pipeline's built-in instrumentation
/// records into (enabled by `reproduce --trace` / `droplens --trace`).
pub fn global() -> &'static Tracer {
    static GLOBAL: OnceLock<Tracer> = OnceLock::new();
    GLOBAL.get_or_init(Tracer::new)
}

fn saturating_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// State of an open (recording) trace guard.
#[derive(Debug)]
struct GuardState {
    tracer: Tracer,
    id: u64,
    parent: u64,
    name: String,
    cat: &'static str,
    start: Instant,
    depth: usize,
    args: Vec<(&'static str, ArgValue)>,
    /// Open memory attribution region (`None` without a tracking
    /// allocator); closed on drop into `alloc_bytes`/`freed_bytes`/
    /// `peak_delta` args plus a `live_bytes` counter sample.
    mem: Option<crate::alloc::MemMark>,
}

/// An open trace span: records a [`TraceEvent`] when dropped (or on
/// [`TraceGuard::finish`]). A guard from a disabled tracer is an inert
/// no-op — every method is safe to call unconditionally.
#[derive(Debug, Default)]
pub struct TraceGuard {
    state: Option<GuardState>,
}

impl TraceGuard {
    /// This span's id (0 when tracing is disabled). Hand it to
    /// [`Tracer::span_under`] on another thread to nest under this span.
    pub fn id(&self) -> u64 {
        self.state.as_ref().map_or(0, |s| s.id)
    }

    /// Attach an unsigned-integer attribute.
    pub fn arg_u64(&mut self, key: &'static str, value: u64) -> &mut Self {
        if let Some(s) = &mut self.state {
            s.args.push((key, ArgValue::U64(value)));
        }
        self
    }

    /// Attach a signed-integer attribute.
    pub fn arg_i64(&mut self, key: &'static str, value: i64) -> &mut Self {
        if let Some(s) = &mut self.state {
            s.args.push((key, ArgValue::I64(value)));
        }
        self
    }

    /// Attach a float attribute.
    pub fn arg_f64(&mut self, key: &'static str, value: f64) -> &mut Self {
        if let Some(s) = &mut self.state {
            s.args.push((key, ArgValue::F64(value)));
        }
        self
    }

    /// Attach a string attribute.
    pub fn arg_str(&mut self, key: &'static str, value: impl Into<String>) -> &mut Self {
        if let Some(s) = &mut self.state {
            s.args.push((key, ArgValue::Str(value.into())));
        }
        self
    }

    /// Close the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        let Some(s) = self.state.take() else { return };
        let ts_ns = saturating_ns(s.start.duration_since(s.tracer.inner.epoch));
        let dur_ns = saturating_ns(s.start.elapsed());
        TRACE_STACK.with(|stack| {
            // LIFO in well-formed use; truncating self-heals if an outer
            // guard drops before an inner one.
            stack.borrow_mut().truncate(s.depth);
        });
        let mut args = s.args;
        let sampled_mem = s.mem.is_some();
        if let Some(mark) = s.mem {
            // Guards drop innermost-first, which is exactly the LIFO
            // discipline the mark's peak save/restore needs.
            let d = mark.finish();
            args.push(("alloc_bytes", ArgValue::U64(d.alloc_bytes)));
            args.push(("freed_bytes", ArgValue::U64(d.freed_bytes)));
            args.push(("peak_delta", ArgValue::U64(d.peak_delta)));
        }
        let end_ns = ts_ns.saturating_add(dur_ns);
        s.tracer.push(TraceEvent {
            id: s.id,
            parent: s.parent,
            name: s.name,
            cat: s.cat,
            tid: 0, // filled by push
            ts_ns,
            dur_ns,
            kind: EventKind::Span,
            args,
        });
        if sampled_mem {
            // Sample this worker's live bytes at every span close: a
            // timeline dense exactly where the run is busy.
            let id = s.tracer.inner.next_id.fetch_add(1, Ordering::Relaxed);
            s.tracer.push(TraceEvent {
                id,
                parent: s.parent,
                name: "live_bytes".to_owned(),
                cat: "mem",
                tid: 0, // filled by push
                ts_ns: end_ns,
                dur_ns: 0,
                kind: EventKind::Counter,
                args: vec![(
                    "live_bytes",
                    ArgValue::I64(crate::alloc::thread_live_bytes()),
                )],
            });
        }
    }
}

/// Pops an adopted parent id off this thread's stack on drop.
#[derive(Debug)]
pub struct AdoptGuard {
    depth: Option<usize>,
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        if let Some(depth) = self.depth {
            TRACE_STACK.with(|s| s.borrow_mut().truncate(depth));
        }
    }
}

/// A drained trace: every event, sorted by start time.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// The events, sorted by `(ts_ns, id)`.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Render as Chrome trace-event JSON (the `trace-event` format
    /// Perfetto and `chrome://tracing` load). Spans become complete
    /// (`"ph":"X"`) events with microsecond timestamps; instants become
    /// thread-scoped `"ph":"i"` markers; every worker timeline gets a
    /// `thread_name` metadata record. Span and parent ids travel in
    /// `args`, so cross-thread hierarchy survives the export.
    pub fn to_chrome_json(&self) -> String {
        let mut events: Vec<JsonObject> = Vec::with_capacity(self.events.len() + 8);
        let mut tids: Vec<u64> = self.events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        for tid in &tids {
            let mut name_args = JsonObject::new();
            name_args.field_str("name", &thread_label(*tid));
            let mut meta = JsonObject::new();
            meta.field_str("name", "thread_name")
                .field_str("ph", "M")
                .field_u64("pid", 1)
                .field_u64("tid", *tid)
                .field_object("args", name_args);
            events.push(meta);
        }
        for e in &self.events {
            let mut args = JsonObject::new();
            if e.kind != EventKind::Counter {
                // Counter args are pure series values; ids would render
                // as extra (meaningless) counter tracks.
                args.field_u64("id", e.id).field_u64("parent", e.parent);
            }
            for (k, v) in &e.args {
                match v {
                    ArgValue::U64(n) => args.field_u64(k, *n),
                    ArgValue::I64(n) => args.field_i64(k, *n),
                    ArgValue::F64(n) => args.field_f64(k, *n),
                    ArgValue::Str(s) => args.field_str(k, s),
                };
            }
            let mut o = JsonObject::new();
            match e.kind {
                // Chrome keys counter tracks by (pid, name): suffix the
                // worker label so every thread gets its own track.
                EventKind::Counter => {
                    o.field_str("name", &format!("{} ({})", e.name, thread_label(e.tid)))
                }
                _ => o.field_str("name", &e.name),
            };
            o.field_str("cat", e.cat);
            match e.kind {
                EventKind::Span => {
                    o.field_str("ph", "X")
                        .field_f64("ts", e.ts_ns as f64 / 1000.0)
                        .field_f64("dur", e.dur_ns as f64 / 1000.0);
                }
                EventKind::Instant => {
                    o.field_str("ph", "i")
                        .field_f64("ts", e.ts_ns as f64 / 1000.0)
                        .field_str("s", "t");
                }
                EventKind::Counter => {
                    o.field_str("ph", "C")
                        .field_f64("ts", e.ts_ns as f64 / 1000.0);
                }
            }
            o.field_u64("pid", 1)
                .field_u64("tid", e.tid)
                .field_object("args", args);
            events.push(o);
        }
        let mut root = JsonObject::new();
        root.field_str("schema", "droplens-trace/1")
            .field_str("displayTimeUnit", "ms")
            .field_object_array("traceEvents", events);
        let mut out = root.finish();
        out.push('\n');
        out
    }

    /// Render a deterministic text tree for test assertions.
    ///
    /// Determinism rules: siblings with the same `(name, cat, kind)`
    /// merge into one node (`×count`); children sort by name, not by
    /// wall-clock; node ids are renumbered depth-first; durations are
    /// bucketed into power-of-two ranges. Attributes are shown only when
    /// every merged event agrees on them, so run-varying values drop out
    /// while structural ones (source labels, fixed counts) stay.
    pub fn to_text_tree(&self) -> String {
        let mut children: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
        let ids: std::collections::BTreeSet<u64> = self.events.iter().map(|e| e.id).collect();
        for e in &self.events {
            if e.kind == EventKind::Counter {
                continue; // timeline samples, not structure
            }
            // Events whose parent was never recorded (opened before
            // enable, or parented to a disabled guard) are roots.
            let parent = if ids.contains(&e.parent) { e.parent } else { 0 };
            children.entry(parent).or_default().push(e);
        }
        let mut out = String::new();
        let mut next_id = 1u64;
        render_level(&children, 0, 0, &mut next_id, &mut out);
        out
    }

    /// Fraction of the first `root`-named span's wall-clock covered by
    /// its direct children (interval union, clipped to the root span).
    /// `None` when no such span exists or it has zero duration.
    pub fn coverage(&self, root: &str) -> Option<f64> {
        let root_ev = self
            .events
            .iter()
            .find(|e| e.name == root && e.kind == EventKind::Span)?;
        if root_ev.dur_ns == 0 {
            return None;
        }
        let mut intervals: Vec<(u64, u64)> = self
            .events
            .iter()
            .filter(|e| e.parent == root_ev.id && e.kind == EventKind::Span)
            .map(|e| (e.ts_ns.max(root_ev.ts_ns), e.end_ns().min(root_ev.end_ns())))
            .filter(|(lo, hi)| hi > lo)
            .collect();
        intervals.sort_unstable();
        let mut covered = 0u64;
        let mut cursor = 0u64;
        for (lo, hi) in intervals {
            let lo = lo.max(cursor);
            if hi > lo {
                covered += hi - lo;
                cursor = hi;
            }
        }
        Some(covered as f64 / root_ev.dur_ns as f64)
    }
}

/// Per-span memory attribution keys appended by the tracking allocator:
/// handled specially by the text tree (summed bucket, not raw values).
const MEM_ARG_KEYS: [&str; 3] = ["alloc_bytes", "freed_bytes", "peak_delta"];

/// The human label of a worker timeline (`main` / `worker-N`), used for
/// thread metadata and per-worker counter track names.
fn thread_label(tid: u64) -> String {
    if tid == 0 {
        "main".to_owned()
    } else {
        format!("worker-{tid}")
    }
}

/// Render one level of the merged tree (children of `parent`), indented.
fn render_level(
    children: &BTreeMap<u64, Vec<&TraceEvent>>,
    parent: u64,
    depth: usize,
    next_id: &mut u64,
    out: &mut String,
) {
    let Some(events) = children.get(&parent) else {
        return;
    };
    // Merge siblings by (name, cat, kind), keeping name order.
    let mut groups: BTreeMap<(&str, &str, bool), Vec<&TraceEvent>> = BTreeMap::new();
    for e in events {
        groups
            .entry((e.name.as_str(), e.cat, e.kind == EventKind::Instant))
            .or_default()
            .push(e);
    }
    for ((name, cat, is_instant), group) in groups {
        let id = *next_id;
        *next_id += 1;
        let total_ns: u64 = group.iter().map(|e| e.dur_ns).sum();
        let _ = write!(out, "{}#{id} {name}", "  ".repeat(depth));
        if group.len() > 1 {
            let _ = write!(out, " ×{}", group.len());
        }
        if is_instant {
            let _ = write!(out, " [instant]");
        } else if total_ns == 0 {
            let _ = write!(out, " [0]");
        } else {
            // Half-open power-of-two bucket, e.g. `[2.048µs..4.096µs)`.
            let _ = write!(out, " [{})", duration_bucket(total_ns));
        }
        // The default categories carry no information beyond "a span";
        // only domain categories (par, parse, ingest, ...) are shown.
        if cat != "span" && cat != "stage" {
            let _ = write!(out, " <{cat}>");
        }
        // Allocation attribution is run-varying byte-for-byte but stable
        // in magnitude: render the *summed* power-of-two bucket instead
        // of the per-event agreement rule below.
        let alloc_total: u64 = group
            .iter()
            .flat_map(|e| &e.args)
            .filter(|(k, _)| *k == "alloc_bytes")
            .map(|(_, v)| match v {
                ArgValue::U64(n) => *n,
                _ => 0,
            })
            .sum();
        if alloc_total > 0 {
            let _ = write!(out, " alloc[{})", crate::alloc::byte_bucket(alloc_total));
        }
        // Attributes every merged event agrees on (memory attribution is
        // handled above and excluded here).
        if let Some(first) = group.first() {
            for (k, v) in &first.args {
                if MEM_ARG_KEYS.contains(k) {
                    continue;
                }
                if group
                    .iter()
                    .all(|e| e.args.iter().any(|(ek, ev)| ek == k && ev == v))
                {
                    let _ = write!(out, " {k}={}", v.render());
                }
            }
        }
        out.push('\n');
        for e in &group {
            render_level(children, e.id, depth + 1, next_id, out);
        }
    }
}

/// The power-of-two duration bucket containing `ns`, rendered as a
/// half-open range (`[512µs..1.048576ms)`), with exact zero kept exact.
fn duration_bucket(ns: u64) -> String {
    if ns == 0 {
        return "0".to_owned();
    }
    let exp = 63 - ns.leading_zeros();
    let lo = 1u64 << exp;
    let hi = lo.saturating_mul(2);
    format!(
        "{:?}..{:?}",
        Duration::from_nanos(lo),
        Duration::from_nanos(hi)
    )
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code: panics are failures
mod tests {
    use super::*;

    fn ev(
        id: u64,
        parent: u64,
        name: &str,
        cat: &'static str,
        ts: u64,
        dur: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) -> TraceEvent {
        TraceEvent {
            id,
            parent,
            name: name.to_owned(),
            cat,
            tid: 0,
            ts_ns: ts,
            dur_ns: dur,
            kind: EventKind::Span,
            args,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        {
            let mut g = t.span("noop", "test");
            g.arg_u64("n", 1);
            assert_eq!(g.id(), 0);
            t.instant("nope", "test", vec![]);
        }
        assert!(t.drain().events.is_empty());
    }

    #[test]
    fn spans_nest_and_record() {
        let t = Tracer::new();
        t.enable();
        let outer_id;
        {
            let outer = t.span("outer", "test");
            outer_id = outer.id();
            assert_ne!(outer_id, 0);
            assert_eq!(t.current(), outer_id);
            let inner = t.span("inner", "test");
            assert_ne!(inner.id(), 0);
            drop(inner);
            assert_eq!(t.current(), outer_id);
        }
        assert_eq!(t.current(), 0);
        let trace = t.drain();
        // Sibling alloc tests may flip the process-wide ACTIVE flag,
        // adding live_bytes counter samples: count spans only.
        let spans = trace
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Span)
            .count();
        assert_eq!(spans, 2);
        let outer = trace.events.iter().find(|e| e.name == "outer").unwrap();
        let inner = trace.events.iter().find(|e| e.name == "inner").unwrap();
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.id, outer_id);
    }

    #[test]
    fn adopt_links_across_threads() {
        let t = Tracer::new();
        t.enable();
        let parent = t.span("stage", "test");
        let pid = parent.id();
        let tc = t.clone();
        std::thread::scope(|s| {
            s.spawn(move || {
                let _a = tc.adopt(pid);
                let mut g = tc.span("task", "test");
                g.arg_u64("queue_wait_ns", 17);
            });
        });
        drop(parent);
        let trace = t.drain();
        let task = trace.events.iter().find(|e| e.name == "task").unwrap();
        assert_eq!(task.parent, pid);
        assert_ne!(task.tid, 0, "worker gets its own timeline");
        assert_eq!(task.args[0], ("queue_wait_ns", ArgValue::U64(17)));
    }

    #[test]
    fn instants_attach_to_current_span() {
        let t = Tracer::new();
        t.enable();
        let g = t.span("parse", "test");
        let gid = g.id();
        t.instant(
            "quarantine",
            "ingest",
            vec![("source", ArgValue::Str("bgp".into()))],
        );
        drop(g);
        let trace = t.drain();
        let q = trace
            .events
            .iter()
            .find(|e| e.name == "quarantine")
            .unwrap();
        assert_eq!(q.parent, gid);
        assert_eq!(q.kind, EventKind::Instant);
        assert_eq!(q.dur_ns, 0);
    }

    #[test]
    fn chrome_json_shape() {
        let trace = Trace {
            events: vec![
                ev(1, 0, "root", "stage", 0, 2_000, vec![]),
                ev(
                    2,
                    1,
                    "leaf \"q\"",
                    "parse",
                    500,
                    1_000,
                    vec![("items", ArgValue::U64(3)), ("f", ArgValue::F64(0.5))],
                ),
            ],
        };
        let json = trace.to_chrome_json();
        assert!(json.starts_with("{\"schema\":\"droplens-trace/1\""));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":0.5"), "{json}");
        assert!(json.contains("\"dur\":1"), "{json}");
        assert!(json.contains("\"name\":\"leaf \\\"q\\\"\""));
        assert!(json.contains("\"items\":3"));
        assert!(json.contains("\"f\":0.5"));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"parent\":1"));
    }

    #[test]
    fn text_tree_is_deterministic_and_merges_siblings() {
        let mk = |order: [u64; 2]| Trace {
            events: vec![
                ev(1, 0, "study", "stage", 0, 4_000, vec![]),
                ev(
                    2,
                    1,
                    "task",
                    "par",
                    order[0],
                    1_000,
                    vec![("items", ArgValue::U64(5))],
                ),
                ev(
                    3,
                    1,
                    "task",
                    "par",
                    order[1],
                    1_000,
                    vec![("items", ArgValue::U64(7))],
                ),
                ev(
                    4,
                    1,
                    "annotate",
                    "stage",
                    100,
                    2_048,
                    vec![("source", ArgValue::Str("drop".into()))],
                ),
            ],
        };
        // Same events in either completion order render identically.
        let a = mk([10, 20]).to_text_tree();
        let b = mk([20, 10]).to_text_tree();
        assert_eq!(a, b);
        let lines: Vec<&str> = a.lines().collect();
        assert_eq!(lines[0], "#1 study [2.048µs..4.096µs)");
        // Children sorted by name: annotate before task.
        assert_eq!(lines[1], "  #2 annotate [2.048µs..4.096µs) source=drop");
        // Merged node: ×2 with summed duration (2µs), disagreeing
        // `items` arg omitted.
        assert_eq!(lines[2], "  #3 task ×2 [1.024µs..2.048µs) <par>");
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn orphaned_events_become_roots() {
        let trace = Trace {
            events: vec![ev(5, 99, "lost", "stage", 0, 10, vec![])],
        };
        let tree = trace.to_text_tree();
        assert!(tree.starts_with("#1 lost"));
    }

    #[test]
    fn coverage_unions_overlapping_children() {
        let trace = Trace {
            events: vec![
                ev(1, 0, "root", "stage", 0, 1_000, vec![]),
                // Two overlapping children on different workers.
                ev(2, 1, "a", "stage", 0, 600, vec![]),
                ev(3, 1, "b", "stage", 400, 500, vec![]),
            ],
        };
        let c = trace.coverage("root").unwrap();
        assert!((c - 0.9).abs() < 1e-9, "{c}");
        assert_eq!(trace.coverage("missing"), None);
    }

    #[test]
    fn duration_buckets() {
        assert_eq!(duration_bucket(0), "0");
        assert_eq!(duration_bucket(1), "1ns..2ns");
        assert_eq!(duration_bucket(1500), "1.024µs..2.048µs");
    }

    fn counter_ev(id: u64, tid: u64, ts: u64, live: i64) -> TraceEvent {
        TraceEvent {
            id,
            parent: 0,
            name: "live_bytes".to_owned(),
            cat: "mem",
            tid,
            ts_ns: ts,
            dur_ns: 0,
            kind: EventKind::Counter,
            args: vec![("live_bytes", ArgValue::I64(live))],
        }
    }

    #[test]
    fn counter_events_render_as_per_worker_chrome_tracks() {
        let trace = Trace {
            events: vec![
                ev(1, 0, "root", "stage", 0, 2_000, vec![]),
                counter_ev(2, 0, 100, 4096),
                counter_ev(3, 1, 200, 8192),
            ],
        };
        let json = trace.to_chrome_json();
        assert!(json.contains("\"ph\":\"C\""), "{json}");
        assert!(json.contains("\"name\":\"live_bytes (main)\""), "{json}");
        assert!(
            json.contains("\"name\":\"live_bytes (worker-1)\""),
            "{json}"
        );
        assert!(json.contains("\"live_bytes\":4096"), "{json}");
        // Counter args must carry only series values — an `id` field
        // would render as a bogus extra counter series in Perfetto.
        let counter_start = json.find("\"ph\":\"C\"").unwrap();
        let counter_args = &json[counter_start..];
        let args_field = counter_args.find("\"args\":{").unwrap();
        let close = counter_args[args_field..].find('}').unwrap();
        let args_body = &counter_args[args_field..args_field + close];
        assert!(!args_body.contains("\"id\""), "{args_body}");
        assert!(!args_body.contains("\"parent\""), "{args_body}");
    }

    #[test]
    fn counter_events_stay_out_of_text_tree() {
        let trace = Trace {
            events: vec![
                ev(1, 0, "root", "stage", 0, 2_000, vec![]),
                counter_ev(2, 0, 100, 4096),
            ],
        };
        let tree = trace.to_text_tree();
        assert!(!tree.contains("live_bytes"), "{tree}");
        assert_eq!(tree.lines().count(), 1);
    }

    #[test]
    fn text_tree_buckets_alloc_bytes() {
        let mem_args = |b: u64| {
            vec![
                ("alloc_bytes", ArgValue::U64(b)),
                ("freed_bytes", ArgValue::U64(b / 2)),
                ("peak_delta", ArgValue::U64(b / 4)),
            ]
        };
        let trace = Trace {
            events: vec![
                ev(1, 0, "root", "stage", 0, 4_000, mem_args(100)),
                ev(2, 1, "task", "par", 0, 1_000, mem_args(600)),
                ev(3, 1, "task", "par", 10, 1_000, mem_args(600)),
            ],
        };
        let tree = trace.to_text_tree();
        // Merged siblings sum to 1200B → the [1.0KiB..2.0KiB) bucket;
        // the raw per-event byte values never appear.
        assert!(tree.contains("task ×2"), "{tree}");
        assert!(tree.contains("alloc[1.0KiB..2.0KiB)"), "{tree}");
        assert!(!tree.contains("alloc_bytes="), "{tree}");
        assert!(!tree.contains("freed_bytes="), "{tree}");
        assert!(!tree.contains("peak_delta="), "{tree}");
    }

    #[test]
    fn coverage_of_zero_duration_root_is_none() {
        let trace = Trace {
            events: vec![ev(1, 0, "root", "stage", 0, 0, vec![])],
        };
        assert_eq!(trace.coverage("root"), None);
        // Zero-span trace: nothing to cover at all.
        assert_eq!(Trace::default().coverage("root"), None);
    }
}

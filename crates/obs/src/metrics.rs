//! Metric primitives: counters, gauges, and log-bucket histograms.
//!
//! Every handle is a cheap `Arc`-backed clone over atomics, so the hot
//! path (a parser loop bumping a counter per record) never takes a lock:
//! the registry's map is only consulted when a handle is first looked
//! up. Keep handles outside loops.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A monotonically increasing event count.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A free-standing counter (registry-attached ones come from
    /// [`crate::Registry::counter`]).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can move both ways (queue depths, pool sizes).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A free-standing gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: zero, 62 powers of two, and overflow.
pub const BUCKETS: usize = 64;

/// A histogram over `u64` samples with fixed log-spaced (power-of-two)
/// buckets.
///
/// Bucket 0 holds exact zeros, bucket `i` (1..=62) holds samples in
/// `[2^(i-1), 2^i)`, and bucket 63 is the overflow bucket for samples
/// at or above `2^62`. Quantiles are estimated by linear interpolation
/// inside the bucket containing the rank, clamped to the observed
/// min/max, so they are exact at the distribution's ends and within a
/// factor-of-two bucket elsewhere.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramInner>);

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Lower/upper value bounds of bucket `i` (upper is exclusive).
fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 1),
        _ if i < BUCKETS - 1 => (1 << (i - 1), 1 << i),
        _ => (1 << (BUCKETS - 2), u64::MAX),
    }
}

impl Histogram {
    /// A free-standing histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        let inner = &self.0;
        inner.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.min.fetch_min(v, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration as nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        match self.count() {
            0 => None,
            _ => Some(self.0.min.load(Ordering::Relaxed)),
        }
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        match self.count() {
            0 => None,
            _ => Some(self.0.max.load(Ordering::Relaxed)),
        }
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`); `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the sample the quantile falls on.
        let rank = ((q * count as f64).ceil() as u64).max(1);
        // The extreme ranks are tracked exactly; only interior ranks need
        // the bucket estimate.
        if rank >= count {
            return self.max();
        }
        if rank == 1 {
            return self.min();
        }
        let mut before: u64 = 0;
        for i in 0..BUCKETS {
            let here = self.0.buckets[i].load(Ordering::Relaxed);
            if here == 0 {
                continue;
            }
            if before + here >= rank {
                let (lo, hi) = bucket_bounds(i);
                // Interpolate the rank's midpoint position inside the
                // bucket (rank k of n sits at (k - 0.5)/n, so a bucket's
                // only sample estimates to its middle, not its edge).
                let into = ((rank - before) as f64 - 0.5) / here as f64;
                let est = lo as f64 + into * (hi.saturating_sub(lo)) as f64;
                let est = est as u64;
                // Clamp to observed extremes: exact at the ends.
                return Some(est.clamp(
                    self.0.min.load(Ordering::Relaxed),
                    self.0.max.load(Ordering::Relaxed),
                ));
            }
            before += here;
        }
        self.max()
    }

    /// Fold every sample of `other` into `self`: buckets, count, and
    /// sum add (sum saturating), min/max widen. This is how sharded
    /// windowed histograms aggregate ([`crate::window`]): each
    /// single-writer shard slot is merged into one snapshot histogram
    /// whose quantiles are then read once.
    ///
    /// Merging is a snapshot-time operation: concurrent `record` calls
    /// on `other` may or may not be included (each field is read once,
    /// relaxed), but `self` never goes inconsistent beyond the same
    /// tolerance `record` itself has.
    pub fn merge(&self, other: &Histogram) {
        let count = other.0.count.load(Ordering::Relaxed);
        if count == 0 {
            return;
        }
        for i in 0..BUCKETS {
            let n = other.0.buckets[i].load(Ordering::Relaxed);
            if n > 0 {
                self.0.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.0.count.fetch_add(count, Ordering::Relaxed);
        let sum = self
            .0
            .sum
            .load(Ordering::Relaxed)
            .saturating_add(other.0.sum.load(Ordering::Relaxed));
        self.0.sum.store(sum, Ordering::Relaxed);
        self.0
            .min
            .fetch_min(other.0.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.0
            .max
            .fetch_max(other.0.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Drop every sample, returning the histogram to its empty state.
    /// Not atomic with respect to concurrent `record` calls — callers
    /// (ring-buffer slot rotation in [`crate::window`]) guarantee a
    /// single writer per histogram.
    pub fn reset(&self) {
        for b in &self.0.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.0.count.store(0, Ordering::Relaxed);
        self.0.sum.store(0, Ordering::Relaxed);
        self.0.min.store(u64::MAX, Ordering::Relaxed);
        self.0.max.store(0, Ordering::Relaxed);
    }

    /// Summarize into a plain-data snapshot.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            min: self.min().unwrap_or(0),
            max: self.max().unwrap_or(0),
            p50: self.quantile(0.50).unwrap_or(0),
            p90: self.quantile(0.90).unwrap_or(0),
            p99: self.quantile(0.99).unwrap_or(0),
        }
    }
}

/// Plain-data snapshot of a histogram (what reports serialize).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code: panics are failures
mod tests {
    use super::*;

    #[test]
    fn bucket_layout() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_bounds(1), (1, 2));
        assert_eq!(bucket_bounds(2), (2, 4));
    }

    #[test]
    fn quantile_empty_histogram_is_none() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), None);
        }
        let s = h.summary();
        assert_eq!((s.count, s.min, s.max, s.p50), (0, 0, 0, 0));
    }

    #[test]
    fn quantile_single_sample_is_exact_everywhere() {
        let h = Histogram::new();
        h.record(1500);
        // With one sample every quantile — including the clamped
        // out-of-range ones — is that sample, not a bucket estimate.
        for q in [-0.5, 0.0, 0.25, 0.5, 0.99, 1.0, 2.0] {
            assert_eq!(h.quantile(q), Some(1500), "q={q}");
        }
    }

    #[test]
    fn quantile_extremes_are_exact() {
        let h = Histogram::new();
        for v in [3, 900, 17, 1_000_000, 0] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(0), "q=0 is the exact minimum");
        assert_eq!(h.quantile(1.0), Some(1_000_000), "q=1 is the exact maximum");
    }

    #[test]
    fn quantile_zero_samples_stay_zero() {
        let h = Histogram::new();
        for _ in 0..10 {
            h.record(0);
        }
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), Some(0));
        }
    }

    #[test]
    fn quantile_bucket_boundary_values() {
        // Powers of two sit on bucket edges: 4 opens [4,8), so an
        // interior rank landing in that bucket must estimate within it
        // and inside the observed extremes.
        let h = Histogram::new();
        for v in [4, 4, 4, 8] {
            h.record(v);
        }
        let p50 = h.quantile(0.5).expect("non-empty");
        assert!((4..8).contains(&p50), "p50={p50} outside [4,8)");
        assert_eq!(h.quantile(1.0), Some(8));
        assert_eq!(h.quantile(0.0), Some(4));
        // Interior quantiles never escape [min, max] even when the
        // overflow-adjacent bucket is hit.
        let h2 = Histogram::new();
        h2.record(1);
        h2.record(1 << 62);
        h2.record(u64::MAX);
        for q in [0.3, 0.5, 0.7] {
            let v = h2.quantile(q).unwrap();
            assert!((1..=u64::MAX).contains(&v), "q={q} v={v}");
        }
    }

    #[test]
    fn quantile_uniform_distribution_is_roughly_right() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5).unwrap();
        // Log-bucket estimate: within a factor of two of the true median.
        assert!((250..=1000).contains(&p50), "p50={p50}");
        assert_eq!(h.quantile(1.0), Some(1000));
    }

    #[test]
    fn merge_of_two_empty_histograms_stays_empty() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.merge(&b);
        assert_eq!(a.count(), 0);
        assert_eq!(a.quantile(0.5), None);
        assert_eq!(a.min(), None);
    }

    #[test]
    fn merge_into_empty_is_a_copy() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [10, 20, 30] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 60);
        assert_eq!(a.min(), Some(10));
        assert_eq!(a.max(), Some(30));
        assert_eq!(a.quantile(1.0), Some(30));
    }

    #[test]
    fn merge_widens_extremes_and_adds_counts() {
        let a = Histogram::new();
        a.record(100);
        a.record(200);
        let b = Histogram::new();
        b.record(1);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 1_000_301);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(1_000_000));
        // Every quantile stays inside the widened extremes.
        for q in [0.25, 0.5, 0.75] {
            let v = a.quantile(q).unwrap();
            assert!((1..=1_000_000).contains(&v), "q={q} v={v}");
        }
    }

    #[test]
    fn merge_of_single_bucket_histograms_keeps_the_bucket() {
        // Both sides live entirely in bucket_of(5) = [4, 8): the merged
        // estimate must stay in that bucket and inside [min, max].
        let a = Histogram::new();
        let b = Histogram::new();
        for _ in 0..10 {
            a.record(5);
            b.record(6);
        }
        a.merge(&b);
        assert_eq!(a.count(), 20);
        let p50 = a.quantile(0.5).unwrap();
        assert!((5..=6).contains(&p50), "p50={p50}");
        assert_eq!(a.quantile(0.0), Some(5));
        assert_eq!(a.quantile(1.0), Some(6));
    }

    #[test]
    fn merge_saturates_the_sum_and_keeps_overflow_bucket_quantiles_sane() {
        let a = Histogram::new();
        a.record(u64::MAX);
        let b = Histogram::new();
        b.record(u64::MAX);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.sum(), u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(a.quantile(q), Some(u64::MAX), "q={q}");
        }
    }

    #[test]
    fn reset_returns_to_the_empty_state() {
        let h = Histogram::new();
        for v in [0, 7, 9000] {
            h.record(v);
        }
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.quantile(0.5), None);
        // Recording after a reset behaves like a fresh histogram.
        h.record(42);
        assert_eq!((h.min(), h.max()), (Some(42), Some(42)));
    }

    #[test]
    fn counter_and_gauge() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.value(), 5);
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.value(), 7);
    }
}

//! droplens-obs: pipeline-wide instrumentation for droplens.
//!
//! A zero-heavy-dependency observability layer: counters, gauges, and
//! log-bucket histograms ([`metrics`]), RAII span timers with nested
//! paths ([`Span`]), a thread-safe [`Registry`] collecting them, and two
//! renderers — a human text summary and a stable hand-rolled JSON
//! document ([`RunReport`]) suitable for machine-readable run reports.
//!
//! The pipeline's built-in instrumentation records into the process-wide
//! [`global`] registry; libraries that want isolation can carry their own
//! [`Registry`] (cloning is one `Arc`).
//!
//! On top of the aggregate view sits [`trace`]: a hierarchical tracer
//! with per-worker timelines, per-thread event buffers, Chrome
//! trace-event JSON export (loadable in Perfetto / `chrome://tracing`),
//! and a deterministic text tree for test assertions. It is off by
//! default and costs one atomic load per span when disabled.
//!
//! The third observability axis is memory: [`alloc`] provides an
//! allocation-tracking `#[global_allocator]` wrapper ([`TrackingAlloc`])
//! with per-thread shard counters and per-span attribution — when it is
//! installed, every span and trace event additionally carries
//! `alloc_bytes`/`freed_bytes`/`peak_delta`, traces grow per-worker
//! `live_bytes` counter timelines, and run reports gain `mem.*` gauges.
//!
//! ```
//! let reg = droplens_obs::Registry::new();
//! let parsed = reg.counter("bgp.records.parsed");
//! {
//!     let _span = reg.span("parse");
//!     parsed.add(3);
//! }
//! let report = reg.report();
//! assert_eq!(report.counters["bgp.records.parsed"], 3);
//! assert_eq!(report.spans["parse"].count, 1);
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod clock;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod report;
pub mod run_report;
pub mod span;
pub mod trace;
pub mod window;

pub use alloc::{MemCounts, MemDelta, MemMark, MemSnapshot, TrackingAlloc};
pub use clock::{Clock, Stopwatch};
pub use metrics::{Counter, Gauge, Histogram, HistogramSummary};
pub use registry::{global, ErrorLog, Registry, SpanStat, ERROR_SAMPLES_KEPT};
pub use run_report::{RunReport, SpanRollup};
pub use span::Span;
pub use trace::{ArgValue, Trace, TraceEvent, TraceGuard, Tracer};
pub use window::{WindowConfig, WindowedCounter, WindowedHistogram};

//! Windowed metrics: rolling counters and histograms over the last N
//! seconds, not process lifetime.
//!
//! A lifetime [`crate::Counter`] answers "how many, ever"; a live
//! telemetry plane needs "how many, *lately*" — current q/s, the p99 of
//! the last few seconds. Both types here compute that over a **ring of
//! time slots**: the window is `slots × slot_ns` wide, each slot owns
//! one `slot_ns`-sized stripe of the timeline, and a slot is lazily
//! reset the first time a write lands in a new stripe that maps onto
//! it. Reads merge only the slots whose stripe is still inside the
//! window, so expired data falls out without any background sweeper.
//!
//! # Sharding
//!
//! Writes follow the single-writer shard discipline of [`crate::alloc`]:
//! each writing thread claims a shard index on first use (one
//! `fetch_add`, cached in a const-initialized `thread_local`) and from
//! then on only that thread rotates that shard's slots. With at most
//! [`WINDOW_SHARDS`] concurrently writing threads every shard has one
//! writer and counts are exact; beyond that, threads share shards and a
//! rotation race at a slot boundary can drop a handful of samples from
//! the newest slot — tolerable for telemetry, and the serve worker
//! pools stay below the limit. Readers never write: a snapshot merges
//! shard slots into a fresh accumulator ([`Histogram::merge`]).
//!
//! # Time
//!
//! All time reads go through a [`Clock`], so every rate and expiry
//! decision is deterministic under [`Clock::mock`]: record, advance the
//! clock past the window, observe the samples gone — no sleeps.
//!
//! Slot stripes are identified by an **epoch**: `now_ns / slot_ns + 1`.
//! The `+ 1` keeps epoch 0 free as the "never written" sentinel, so a
//! freshly-zeroed slot is already correctly empty.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::Arc;

use crate::clock::Clock;
use crate::metrics::{Histogram, HistogramSummary};

/// Writer shards per windowed metric. Thread→shard assignment wraps
/// modulo this; see the module docs for the collision tolerance.
pub const WINDOW_SHARDS: usize = 8;

/// Threads that ever claimed a window-writer index (shared across all
/// windowed metrics in the process; indices wrap modulo
/// [`WINDOW_SHARDS`] at use sites).
static NEXT_WRITER: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's writer index; `usize::MAX` until first use.
    static WRITER_IDX: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// This thread's shard index in `0..WINDOW_SHARDS`, claimed on first
/// use. Falls back to shard 0 if TLS is unavailable (thread teardown).
fn shard_index() -> usize {
    WRITER_IDX
        .try_with(|c| {
            let v = c.get();
            if v != usize::MAX {
                return v;
            }
            let v = NEXT_WRITER.fetch_add(1, Relaxed);
            c.set(v);
            v
        })
        .unwrap_or(0)
        % WINDOW_SHARDS
}

/// Geometry of a rolling window: `slots` ring slots of `slot_ns` each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Ring slots; the window covers this many slot-widths.
    pub slots: usize,
    /// Width of one slot in nanoseconds.
    pub slot_ns: u64,
}

impl Default for WindowConfig {
    /// Eight one-second slots: rates and quantiles over the last 8 s.
    fn default() -> WindowConfig {
        WindowConfig {
            slots: 8,
            slot_ns: 1_000_000_000,
        }
    }
}

impl WindowConfig {
    /// Total window width in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        (self.slots as u64).saturating_mul(self.slot_ns)
    }

    /// Clamped-sane geometry: at least one slot, at least 1 ns wide.
    fn normalized(self) -> WindowConfig {
        WindowConfig {
            slots: self.slots.max(1),
            slot_ns: self.slot_ns.max(1),
        }
    }

    /// Epoch of the stripe containing `now_ns` (1-based; 0 is the
    /// never-written sentinel).
    fn epoch(&self, now_ns: u64) -> u64 {
        now_ns / self.slot_ns + 1
    }

    /// Whether `slot_epoch` is still inside the window ending at
    /// `now_epoch`.
    fn live(&self, slot_epoch: u64, now_epoch: u64) -> bool {
        slot_epoch != 0 && slot_epoch <= now_epoch && now_epoch - slot_epoch < self.slots as u64
    }
}

/// One counter slot: the stripe it currently holds, and its count.
#[derive(Debug)]
struct CountSlot {
    epoch: AtomicU64,
    count: AtomicU64,
}

/// A rolling event counter: totals and rates over the last window.
///
/// Cloning shares the ring (an `Arc`), like [`crate::Counter`].
#[derive(Debug, Clone)]
pub struct WindowedCounter(Arc<WindowedCounterInner>);

#[derive(Debug)]
struct WindowedCounterInner {
    config: WindowConfig,
    clock: Clock,
    /// `WINDOW_SHARDS` shards of `config.slots` slots each, flattened
    /// shard-major: shard `s`, slot `i` lives at `s * slots + i`.
    slots: Vec<CountSlot>,
}

impl WindowedCounter {
    /// A windowed counter over `clock` with the given geometry.
    pub fn new(clock: Clock, config: WindowConfig) -> WindowedCounter {
        let config = config.normalized();
        let slots = (0..WINDOW_SHARDS * config.slots)
            .map(|_| CountSlot {
                epoch: AtomicU64::new(0),
                count: AtomicU64::new(0),
            })
            .collect();
        WindowedCounter(Arc::new(WindowedCounterInner {
            config,
            clock,
            slots,
        }))
    }

    /// Add one now.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n` now.
    pub fn add(&self, n: u64) {
        let inner = &self.0;
        let epoch = inner.config.epoch(inner.clock.now_ns());
        let slot = &inner.slots
            [shard_index() * inner.config.slots + (epoch as usize) % inner.config.slots];
        // Single-writer rotation: if the slot still holds an older
        // stripe, zero it and claim the new one before bumping.
        if slot.epoch.load(Relaxed) != epoch {
            slot.count.store(0, Relaxed);
            slot.epoch.store(epoch, Relaxed);
        }
        slot.count.fetch_add(n, Relaxed);
    }

    /// Events inside the current window.
    pub fn total(&self) -> u64 {
        let inner = &self.0;
        let now_epoch = inner.config.epoch(inner.clock.now_ns());
        inner
            .slots
            .iter()
            .filter(|s| inner.config.live(s.epoch.load(Relaxed), now_epoch))
            .map(|s| s.count.load(Relaxed))
            .sum()
    }

    /// Events per second over the covered window. Early in the process
    /// (or a fresh mock clock) the window is not yet full, so the
    /// divisor is the time actually covered, floored at one slot.
    pub fn rate_per_sec(&self) -> f64 {
        let inner = &self.0;
        let covered_ns = inner
            .clock
            .now_ns()
            .saturating_add(inner.config.slot_ns) // the current, partial slot
            .min(inner.config.window_ns())
            .max(inner.config.slot_ns);
        self.total() as f64 * 1e9 / covered_ns as f64
    }

    /// The window geometry this counter was built with.
    pub fn config(&self) -> WindowConfig {
        self.0.config
    }
}

/// One histogram slot: the stripe it currently holds, and its samples.
#[derive(Debug)]
struct HistSlot {
    epoch: AtomicU64,
    hist: Histogram,
}

/// A rolling histogram: quantiles over the last window.
///
/// Cloning shares the ring (an `Arc`), like [`crate::Histogram`].
#[derive(Debug, Clone)]
pub struct WindowedHistogram(Arc<WindowedHistogramInner>);

#[derive(Debug)]
struct WindowedHistogramInner {
    config: WindowConfig,
    clock: Clock,
    /// Flattened shard-major like [`WindowedCounterInner::slots`].
    slots: Vec<HistSlot>,
}

impl WindowedHistogram {
    /// A windowed histogram over `clock` with the given geometry.
    pub fn new(clock: Clock, config: WindowConfig) -> WindowedHistogram {
        let config = config.normalized();
        let slots = (0..WINDOW_SHARDS * config.slots)
            .map(|_| HistSlot {
                epoch: AtomicU64::new(0),
                hist: Histogram::new(),
            })
            .collect();
        WindowedHistogram(Arc::new(WindowedHistogramInner {
            config,
            clock,
            slots,
        }))
    }

    /// Record one sample now.
    pub fn record(&self, v: u64) {
        let inner = &self.0;
        let epoch = inner.config.epoch(inner.clock.now_ns());
        let slot = &inner.slots
            [shard_index() * inner.config.slots + (epoch as usize) % inner.config.slots];
        if slot.epoch.load(Relaxed) != epoch {
            slot.hist.reset();
            slot.epoch.store(epoch, Relaxed);
        }
        slot.hist.record(v);
    }

    /// Merge every live slot into one fresh histogram covering the
    /// current window.
    pub fn merged(&self) -> Histogram {
        let inner = &self.0;
        let now_epoch = inner.config.epoch(inner.clock.now_ns());
        let out = Histogram::new();
        for slot in &inner.slots {
            if inner.config.live(slot.epoch.load(Relaxed), now_epoch) {
                out.merge(&slot.hist);
            }
        }
        out
    }

    /// Plain-data summary of the current window.
    pub fn summary(&self) -> HistogramSummary {
        self.merged().summary()
    }

    /// The window geometry this histogram was built with.
    pub fn config(&self) -> WindowConfig {
        self.0.config
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code: panics are failures
mod tests {
    use super::*;
    use std::time::Duration;

    fn tight() -> WindowConfig {
        // 4 × 1 ms slots: a 4 ms window, fast to step through.
        WindowConfig {
            slots: 4,
            slot_ns: 1_000_000,
        }
    }

    #[test]
    fn window_config_normalizes_degenerate_geometry() {
        let c = WindowConfig {
            slots: 0,
            slot_ns: 0,
        }
        .normalized();
        assert_eq!((c.slots, c.slot_ns), (1, 1));
        assert_eq!(tight().window_ns(), 4_000_000);
    }

    #[test]
    fn counter_totals_cover_only_the_window() {
        let clock = Clock::mock();
        let c = WindowedCounter::new(clock.clone(), tight());
        c.add(3);
        assert_eq!(c.total(), 3);

        // Still inside the window two slots later...
        clock.advance(Duration::from_millis(2));
        c.inc();
        assert_eq!(c.total(), 4);

        // ...but the first slot expires once the window slides past it.
        clock.advance(Duration::from_millis(2));
        assert_eq!(c.total(), 1, "the 3 early events expired");

        // And far in the future everything is gone.
        clock.advance(Duration::from_secs(1));
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn counter_slot_reuse_resets_stale_counts() {
        let clock = Clock::mock();
        let c = WindowedCounter::new(clock.clone(), tight());
        c.add(100);
        // Advance exactly slots ring-periods: the new epoch maps onto
        // the same ring index, so the write must rotate the slot.
        clock.advance(Duration::from_millis(4));
        c.add(7);
        assert_eq!(c.total(), 7, "the stale 100 was rotated out, not added");
    }

    #[test]
    fn counter_rate_uses_covered_time_not_full_window() {
        let clock = Clock::mock();
        let c = WindowedCounter::new(clock.clone(), tight());
        c.add(10);
        // Only the first (1 ms) slot is covered: 10 events / 1 ms.
        let early = c.rate_per_sec();
        assert!((early - 10_000.0).abs() < 1.0, "early rate {early}");

        // With the clock deep into the window, the divisor is the full
        // 4 ms window.
        clock.advance(Duration::from_millis(3));
        let late = c.rate_per_sec();
        assert!((late - 2_500.0).abs() < 1.0, "late rate {late}");
    }

    #[test]
    fn histogram_window_slides_quantiles() {
        let clock = Clock::mock();
        let h = WindowedHistogram::new(clock.clone(), tight());
        for _ in 0..100 {
            h.record(1_000);
        }
        clock.advance(Duration::from_millis(2));
        h.record(8);
        let s = h.summary();
        assert_eq!(s.count, 101);
        assert_eq!(s.min, 8);
        assert_eq!(s.max, 1_000);

        // Slide the window past the burst of 1 000s: only the 8 stays.
        clock.advance(Duration::from_millis(2));
        let s = h.summary();
        assert_eq!((s.count, s.min, s.max, s.p99), (1, 8, 8, 8));

        // Whole window empty → all-zero summary, like an empty Histogram.
        clock.advance(Duration::from_millis(10));
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn histogram_slot_reuse_resets_stale_samples() {
        let clock = Clock::mock();
        let h = WindowedHistogram::new(clock.clone(), tight());
        h.record(1_000_000);
        clock.advance(Duration::from_millis(4)); // same ring index, new epoch
        h.record(5);
        let s = h.summary();
        assert_eq!((s.count, s.max), (1, 5), "stale sample rotated out");
    }

    #[test]
    fn clones_share_the_ring() {
        let clock = Clock::mock();
        let c = WindowedCounter::new(clock.clone(), WindowConfig::default());
        let twin = c.clone();
        twin.add(5);
        c.add(2);
        assert_eq!(c.total(), 7);

        let h = WindowedHistogram::new(clock, WindowConfig::default());
        let htwin = h.clone();
        htwin.record(9);
        assert_eq!(h.summary().count, 1);
    }

    #[test]
    fn multithreaded_writes_from_few_threads_are_exact() {
        // At most WINDOW_SHARDS concurrent writers → shards are
        // single-writer and totals are exact.
        let clock = Clock::mock();
        let c = WindowedCounter::new(clock.clone(), WindowConfig::default());
        let h = WindowedHistogram::new(clock, WindowConfig::default());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..1_000u64 {
                        c.inc();
                        h.record(i);
                    }
                });
            }
        });
        assert_eq!(c.total(), 4_000);
        assert_eq!(h.summary().count, 4_000);
    }
}

//! The metric registry: named handles plus snapshotting.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use crate::metrics::{Counter, Gauge, Histogram};
use crate::run_report::RunReport;
use crate::span::Span;

/// How many error samples each source retains (the first N seen).
pub const ERROR_SAMPLES_KEPT: usize = 5;

/// Accumulated timing (and, with a tracking allocator installed,
/// allocation) of one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed spans on this path.
    pub count: u64,
    /// Total wall-clock across them, nanoseconds.
    pub total_ns: u64,
    /// Bytes allocated on the recording threads inside these spans
    /// (0 without a tracking allocator).
    pub alloc_bytes: u64,
    /// Bytes freed on the recording threads inside these spans.
    pub freed_bytes: u64,
}

impl SpanStat {
    /// Mean wall-clock per span, nanoseconds.
    pub fn mean_ns(&self) -> u64 {
        match self.count {
            0 => 0,
            n => self.total_ns / n,
        }
    }
}

/// Error tally for one source: total seen plus the first few samples.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ErrorLog {
    /// Total errors recorded.
    pub seen: u64,
    /// The first [`ERROR_SAMPLES_KEPT`] error messages.
    pub samples: Vec<String>,
}

#[derive(Debug, Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    spans: Mutex<BTreeMap<String, SpanStat>>,
    errors: Mutex<BTreeMap<String, ErrorLog>>,
}

/// A thread-safe collection of named metrics.
///
/// Cloning is cheap (one `Arc`); all clones observe the same metrics.
/// Lookups lock a `Mutex`-guarded map, but the returned handles mutate
/// lock-free atomics, so the intended pattern is *resolve once, update
/// often*. A sharded backend can later replace the maps without touching
/// this API: handles would simply resolve against a shard.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = lock(&self.inner.counters);
        map.entry(name.to_owned()).or_default().clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = lock(&self.inner.gauges);
        map.entry(name.to_owned()).or_default().clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = lock(&self.inner.histograms);
        map.entry(name.to_owned()).or_default().clone()
    }

    /// Start an RAII span timer named `name`.
    ///
    /// The span's registry path nests under any span currently open on
    /// this thread (`parent/child`); the duration is recorded when the
    /// returned guard drops (or on [`Span::finish`]).
    pub fn span(&self, name: &str) -> Span {
        Span::enter(self.clone(), name)
    }

    /// Record a completed span (used by [`Span`]; callers can also feed
    /// externally measured durations).
    ///
    /// Paths are normalized (empty segments collapse, edge slashes
    /// trim), so an explicitly recorded `"a//b"` or `"/a/b"` aggregates
    /// under the same `a/b` key an RAII span would produce — nested
    /// paths stay consistently related to their parent prefix, and the
    /// report's rollup view ([`RunReport::span_rollups`]) can synthesize
    /// unrecorded ancestors reliably.
    pub fn record_span(&self, path: &str, duration: std::time::Duration) {
        self.record_span_alloc(path, duration, 0, 0);
    }

    /// Record a completed span together with its allocation delta (used
    /// by [`Span`] when a tracking allocator is active; the byte columns
    /// stay zero otherwise). Path normalization as [`Registry::record_span`].
    pub fn record_span_alloc(
        &self,
        path: &str,
        duration: std::time::Duration,
        alloc_bytes: u64,
        freed_bytes: u64,
    ) {
        let path = normalize_span_path(path);
        let mut map = lock(&self.inner.spans);
        let stat = map.entry(path).or_default();
        stat.count += 1;
        stat.total_ns = stat
            .total_ns
            .saturating_add(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
        stat.alloc_bytes = stat.alloc_bytes.saturating_add(alloc_bytes);
        stat.freed_bytes = stat.freed_bytes.saturating_add(freed_bytes);
    }

    /// Record one error for `source`, retaining the first
    /// [`ERROR_SAMPLES_KEPT`] sample messages.
    pub fn error_sample(&self, source: &str, message: impl Into<String>) {
        let mut map = lock(&self.inner.errors);
        let log = map.entry(source.to_owned()).or_default();
        log.seen += 1;
        if log.samples.len() < ERROR_SAMPLES_KEPT {
            log.samples.push(message.into());
        }
    }

    /// Snapshot every metric into a plain-data report.
    pub fn report(&self) -> RunReport {
        RunReport {
            meta: BTreeMap::new(),
            counters: lock(&self.inner.counters)
                .iter()
                .map(|(k, v)| (k.clone(), v.value()))
                .collect(),
            gauges: lock(&self.inner.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), v.value()))
                .collect(),
            histograms: lock(&self.inner.histograms)
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
            spans: lock(&self.inner.spans).clone(),
            errors: lock(&self.inner.errors).clone(),
        }
    }

    /// Discard every metric (new handles required afterwards: handles
    /// resolved before the reset keep feeding their detached atomics).
    pub fn reset(&self) {
        lock(&self.inner.counters).clear();
        lock(&self.inner.gauges).clear();
        lock(&self.inner.histograms).clear();
        lock(&self.inner.spans).clear();
        lock(&self.inner.errors).clear();
    }
}

/// Lock `m`, continuing with the data even if another thread panicked
/// while holding the guard. Every critical section here leaves the map
/// structurally valid (entry insertion, clone, clear), and the
/// instrumentation layer must never turn one panicking worker into a
/// cascade across every thread that touches a metric.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Collapse empty path segments (`a//b`, `/a/b/` → `a/b`) so explicit
/// and RAII-recorded spans share keys. Paths that are already clean —
/// the common case — return without allocating a segment vector.
fn normalize_span_path(path: &str) -> String {
    let needs_fix =
        path.starts_with('/') || path.ends_with('/') || path.contains("//") || path.is_empty();
    if !needs_fix {
        return path.to_owned();
    }
    let mut out = String::with_capacity(path.len());
    for seg in path.split('/').filter(|s| !s.is_empty()) {
        if !out.is_empty() {
            out.push('/');
        }
        out.push_str(seg);
    }
    out
}

/// The process-wide registry the pipeline's built-in instrumentation
/// records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state() {
        let r = Registry::new();
        r.counter("x").inc();
        r.counter("x").add(2);
        assert_eq!(r.counter("x").value(), 3);
        let snap = r.report();
        assert_eq!(snap.counters["x"], 3);
    }

    #[test]
    fn error_samples_capped() {
        let r = Registry::new();
        for i in 0..10 {
            r.error_sample("src", format!("e{i}"));
        }
        let snap = r.report();
        assert_eq!(snap.errors["src"].seen, 10);
        assert_eq!(snap.errors["src"].samples.len(), ERROR_SAMPLES_KEPT);
        assert_eq!(snap.errors["src"].samples[0], "e0");
    }

    #[test]
    fn reset_clears() {
        let r = Registry::new();
        r.counter("a").inc();
        r.record_span("s", std::time::Duration::from_millis(1));
        r.reset();
        let snap = r.report();
        assert!(snap.counters.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn record_span_normalizes_explicit_paths() {
        let r = Registry::new();
        let d = std::time::Duration::from_micros(5);
        r.record_span("a/b", d);
        r.record_span("a//b", d);
        r.record_span("/a/b/", d);
        let snap = r.report();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans["a/b"].count, 3);
        assert_eq!(normalize_span_path("clean/path"), "clean/path");
        assert_eq!(normalize_span_path("///"), "");
    }

    #[test]
    fn reset_racing_concurrent_counter_adds_is_safe() {
        // Handles resolved before a reset keep feeding their detached
        // atomics (the documented contract); the reset itself must never
        // panic, deadlock, or corrupt the maps while writers hammer both
        // old and freshly resolved handles from other threads.
        let r = Registry::new();
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let reg = r.clone();
                let stop = &stop;
                s.spawn(move || {
                    let pinned = reg.counter("race"); // survives resets, detached
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        pinned.add(1);
                        reg.counter("race").add(1); // re-resolves every time
                        reg.record_span("race/span", std::time::Duration::from_nanos(1));
                    }
                });
            }
            for _ in 0..50 {
                r.reset();
                std::thread::yield_now();
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        // Post-reset state is coherent: one more reset gives a clean
        // slate, and a fresh handle starts from zero.
        r.reset();
        assert!(r.report().counters.is_empty());
        r.counter("race").add(2);
        assert_eq!(r.report().counters["race"], 2);
    }
}

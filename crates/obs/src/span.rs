//! RAII span timers with per-thread nesting.

use std::cell::RefCell;
use std::time::{Duration, Instant};

use crate::registry::Registry;
use crate::trace::TraceGuard;

thread_local! {
    /// Segments of the spans currently open on this thread, outermost
    /// first. Shared across registries: nesting reflects the dynamic
    /// call structure, not registry identity.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// An open span: measures wall-clock from creation until drop (or
/// [`Span::finish`]) and records it under its nested path.
///
/// Spans opened while another span is open on the same thread nest:
/// a span `load` opened inside `study` records as `study/load`. Spans
/// are thread-bound — drop them on the thread that opened them.
///
/// When the global tracer ([`crate::trace::global`]) is enabled, every
/// span additionally records a [`crate::trace::TraceEvent`] carrying its
/// parent id, worker thread, and any attributes attached via
/// [`Span::arg_u64`]-style methods — the aggregate view and the timeline
/// come from the same instrumentation points.
#[derive(Debug)]
pub struct Span {
    registry: Registry,
    path: String,
    depth: usize,
    start: Instant,
    recorded: bool,
    trace: TraceGuard,
    /// This thread's cumulative allocation counters at open (`None`
    /// without a tracking allocator); subtracted at record time so the
    /// span's registry row gains byte columns. A plain counter read —
    /// not a [`crate::alloc::MemMark`] — because registry spans may
    /// close out of LIFO order, which would corrupt the mark's peak
    /// save/restore stack.
    mem: Option<crate::alloc::MemCounts>,
}

impl Span {
    pub(crate) fn enter(registry: Registry, name: &str) -> Span {
        let (path, depth) = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let depth = stack.len();
            stack.push(name.to_owned());
            (stack.join("/"), depth)
        });
        // A no-op guard when tracing is disabled (one atomic load).
        let trace = crate::trace::global().span(name, "span");
        Span {
            registry,
            path,
            depth,
            start: Instant::now(),
            recorded: false,
            trace,
            mem: crate::alloc::thread_counts(),
        }
    }

    /// The full nested path this span records under.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Attach an unsigned-integer attribute to this span's trace event
    /// (no-op unless the global tracer is enabled).
    pub fn arg_u64(&mut self, key: &'static str, value: u64) -> &mut Self {
        self.trace.arg_u64(key, value);
        self
    }

    /// Attach a signed-integer attribute to this span's trace event.
    pub fn arg_i64(&mut self, key: &'static str, value: i64) -> &mut Self {
        self.trace.arg_i64(key, value);
        self
    }

    /// Attach a string attribute to this span's trace event.
    pub fn arg_str(&mut self, key: &'static str, value: impl Into<String>) -> &mut Self {
        self.trace.arg_str(key, value);
        self
    }

    /// Wall-clock since the span opened.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Close the span now and return its duration.
    pub fn finish(mut self) -> Duration {
        self.record();
        self.start.elapsed()
    }

    fn record(&mut self) {
        if self.recorded {
            return;
        }
        self.recorded = true;
        let (alloc_bytes, freed_bytes) = match (self.mem, crate::alloc::thread_counts()) {
            (Some(base), Some(now)) => (
                now.alloc_bytes.saturating_sub(base.alloc_bytes),
                now.freed_bytes.saturating_sub(base.freed_bytes),
            ),
            _ => (0, 0),
        };
        self.registry
            .record_span_alloc(&self.path, self.start.elapsed(), alloc_bytes, freed_bytes);
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // LIFO in well-formed use; truncating self-heals if an outer
            // span is dropped before an inner one.
            stack.truncate(self.depth);
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_builds_paths() {
        let r = Registry::new();
        {
            let _outer = r.span("outer");
            {
                let inner = r.span("inner");
                assert_eq!(inner.path(), "outer/inner");
            }
            let sibling = r.span("sibling");
            assert_eq!(sibling.path(), "outer/sibling");
        }
        let after = r.span("after");
        assert_eq!(after.path(), "after");
        drop(after);

        let snap = r.report();
        let paths: Vec<&str> = snap.spans.keys().map(String::as_str).collect();
        assert_eq!(
            paths,
            vec!["after", "outer", "outer/inner", "outer/sibling"]
        );
        assert_eq!(snap.spans["outer"].count, 1);
    }

    #[test]
    fn finish_records_once() {
        let r = Registry::new();
        let s = r.span("once");
        let d = s.finish();
        assert!(d >= Duration::ZERO);
        assert_eq!(r.report().spans["once"].count, 1);
    }
}

//! Minimal hand-rolled JSON writing, matching the repo's no-external-
//! dependency idiom.
//!
//! Only what run reports need: objects with string keys, string/number
//! values, nested objects, and string arrays. Keys are emitted in the
//! order fields are added — reports add them from `BTreeMap`s, so the
//! output is byte-stable for a given set of metrics.

use std::fmt::Write as _;

/// Escape `s` as the body of a JSON string literal (no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// An in-progress JSON object.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Start an empty object.
    pub fn new() -> JsonObject {
        JsonObject::default()
    }

    fn key(&mut self, k: &str) -> &mut String {
        self.buf.push(if self.buf.is_empty() { '{' } else { ',' });
        let _ = write!(self.buf, "\"{}\":", escape(k));
        &mut self.buf
    }

    /// Add an unsigned integer field.
    pub fn field_u64(&mut self, k: &str, v: u64) -> &mut Self {
        let _ = write!(self.key(k), "{v}");
        self
    }

    /// Add a signed integer field.
    pub fn field_i64(&mut self, k: &str, v: i64) -> &mut Self {
        let _ = write!(self.key(k), "{v}");
        self
    }

    /// Add a string field.
    pub fn field_str(&mut self, k: &str, v: &str) -> &mut Self {
        let _ = write!(self.key(k), "\"{}\"", escape(v));
        self
    }

    /// Add a nested object field.
    pub fn field_object(&mut self, k: &str, v: JsonObject) -> &mut Self {
        let rendered = v.finish();
        self.key(k).push_str(&rendered);
        self
    }

    /// Add a string-array field.
    pub fn field_str_array(&mut self, k: &str, items: &[String]) -> &mut Self {
        let buf = self.key(k);
        buf.push('[');
        for (i, item) in items.iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            let _ = write!(buf, "\"{}\"", escape(item));
        }
        buf.push(']');
        self
    }

    /// Render the object.
    pub fn finish(self) -> String {
        if self.buf.is_empty() {
            "{}".to_owned()
        } else {
            let mut buf = self.buf;
            buf.push('}');
            buf
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn objects_nest() {
        let mut inner = JsonObject::new();
        inner.field_u64("n", 3);
        let mut outer = JsonObject::new();
        outer
            .field_str("name", "x")
            .field_i64("delta", -2)
            .field_object("inner", inner)
            .field_str_array("tags", &["a".into(), "b\"c".into()]);
        assert_eq!(
            outer.finish(),
            r#"{"name":"x","delta":-2,"inner":{"n":3},"tags":["a","b\"c"]}"#
        );
        assert_eq!(JsonObject::new().finish(), "{}");
    }
}

//! Minimal hand-rolled JSON writing and reading, matching the repo's
//! no-external-dependency idiom.
//!
//! Writing covers what run reports and trace exports need: objects with
//! string keys, string/number values, nested objects, object arrays, and
//! string arrays. Keys are emitted in the order fields are added —
//! reports add them from `BTreeMap`s, so the output is byte-stable for a
//! given set of metrics. Reading ([`parse`]) is a small recursive-descent
//! parser over the same subset (plus bools/null for robustness), enough
//! for `droplens perf diff` to load run reports back.

use std::fmt::Write as _;

/// Escape `s` as the body of a JSON string literal (no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// An in-progress JSON object.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Start an empty object.
    pub fn new() -> JsonObject {
        JsonObject::default()
    }

    fn key(&mut self, k: &str) -> &mut String {
        self.buf.push(if self.buf.is_empty() { '{' } else { ',' });
        let _ = write!(self.buf, "\"{}\":", escape(k));
        &mut self.buf
    }

    /// Add an unsigned integer field.
    pub fn field_u64(&mut self, k: &str, v: u64) -> &mut Self {
        let _ = write!(self.key(k), "{v}");
        self
    }

    /// Add a signed integer field.
    pub fn field_i64(&mut self, k: &str, v: i64) -> &mut Self {
        let _ = write!(self.key(k), "{v}");
        self
    }

    /// Add a float field, formatted with Rust's shortest-roundtrip
    /// `Display` (stable across platforms; `1.0` renders as `1`).
    /// Non-finite values have no JSON representation and render `null`.
    pub fn field_f64(&mut self, k: &str, v: f64) -> &mut Self {
        let buf = self.key(k);
        if v.is_finite() {
            let _ = write!(buf, "{v}");
        } else {
            buf.push_str("null");
        }
        self
    }

    /// Add a string field.
    pub fn field_str(&mut self, k: &str, v: &str) -> &mut Self {
        let _ = write!(self.key(k), "\"{}\"", escape(v));
        self
    }

    /// Add a nested object field.
    pub fn field_object(&mut self, k: &str, v: JsonObject) -> &mut Self {
        let rendered = v.finish();
        self.key(k).push_str(&rendered);
        self
    }

    /// Add an array-of-objects field (trace exporters emit one object
    /// per event).
    pub fn field_object_array(&mut self, k: &str, items: Vec<JsonObject>) -> &mut Self {
        let mut rendered = String::new();
        rendered.push('[');
        for (i, item) in items.into_iter().enumerate() {
            if i > 0 {
                rendered.push(',');
            }
            rendered.push_str(&item.finish());
        }
        rendered.push(']');
        self.key(k).push_str(&rendered);
        self
    }

    /// Add a string-array field.
    pub fn field_str_array(&mut self, k: &str, items: &[String]) -> &mut Self {
        let buf = self.key(k);
        buf.push('[');
        for (i, item) in items.iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            let _ = write!(buf, "\"{}\"", escape(item));
        }
        buf.push(']');
        self
    }

    /// Render the object.
    pub fn finish(self) -> String {
        if self.buf.is_empty() {
            "{}".to_owned()
        } else {
            let mut buf = self.buf;
            buf.push('}');
            buf
        }
    }
}

/// A parsed JSON value (the subset this crate writes, plus bool/null).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (span totals up to 2^53 round-trip exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in document order (duplicate keys keep the last).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects (`None` elsewhere or when absent).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's members, or an empty slice.
    pub fn members(&self) -> &[(String, Value)] {
        match self {
            Value::Object(m) => m,
            _ => &[],
        }
    }

    /// The array's items, or an empty slice.
    pub fn items(&self) -> &[Value] {
        match self {
            Value::Array(items) => items,
            _ => &[],
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value as u64 (negative / fractional → `None`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Numeric value as i64.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n)
                if n.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(n) =>
            {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse a JSON document. Errors carry the byte offset where parsing
/// failed.
pub fn parse(text: &str) -> Result<Value, ParseJsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

/// A JSON parse failure: what went wrong and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseJsonError {
    /// What was expected or found.
    pub message: &'static str,
    /// Byte offset into the document.
    pub offset: usize,
}

impl std::fmt::Display for ParseJsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseJsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> ParseJsonError {
        ParseJsonError {
            message,
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, message: &'static str) -> Result<(), ParseJsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, ParseJsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("unknown literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseJsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseJsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseJsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseJsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs don't occur in our own
                            // output (we only \u-escape control chars);
                            // map lone surrogates to the replacement
                            // character rather than failing the document.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-sync to char boundaries for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseJsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|text| text.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| self.err("bad number"))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code: panics are failures
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn objects_nest() {
        let mut inner = JsonObject::new();
        inner.field_u64("n", 3);
        let mut outer = JsonObject::new();
        outer
            .field_str("name", "x")
            .field_i64("delta", -2)
            .field_object("inner", inner)
            .field_str_array("tags", &["a".into(), "b\"c".into()]);
        assert_eq!(
            outer.finish(),
            r#"{"name":"x","delta":-2,"inner":{"n":3},"tags":["a","b\"c"]}"#
        );
        assert_eq!(JsonObject::new().finish(), "{}");
    }

    #[test]
    fn f64_fields_are_shortest_roundtrip() {
        let mut o = JsonObject::new();
        o.field_f64("a", 0.1)
            .field_f64("b", 1.0)
            .field_f64("c", 1234.5678)
            .field_f64("nan", f64::NAN);
        assert_eq!(o.finish(), r#"{"a":0.1,"b":1,"c":1234.5678,"nan":null}"#);
    }

    #[test]
    fn object_arrays() {
        let mut a = JsonObject::new();
        a.field_u64("n", 1);
        let mut b = JsonObject::new();
        b.field_str("s", "x");
        let mut o = JsonObject::new();
        o.field_object_array("items", vec![a, b])
            .field_object_array("empty", Vec::new());
        assert_eq!(o.finish(), r#"{"items":[{"n":1},{"s":"x"}],"empty":[]}"#);
    }

    #[test]
    fn parse_round_trips_written_documents() {
        let mut inner = JsonObject::new();
        inner.field_u64("count", 3).field_f64("rate", 0.25);
        let mut doc = JsonObject::new();
        doc.field_str("name", "x\n\"q\"")
            .field_i64("delta", -2)
            .field_object("inner", inner)
            .field_str_array("tags", &["a".into(), "b\\c".into()]);
        let text = doc.finish();
        let v = parse(&text).expect("parses");
        assert_eq!(v.get("name").and_then(Value::as_str), Some("x\n\"q\""));
        assert_eq!(v.get("delta").and_then(Value::as_i64), Some(-2));
        assert_eq!(
            v.get("inner")
                .and_then(|i| i.get("count"))
                .and_then(Value::as_u64),
            Some(3)
        );
        assert_eq!(
            v.get("inner")
                .and_then(|i| i.get("rate"))
                .and_then(Value::as_f64),
            Some(0.25)
        );
        match v.get("tags") {
            Some(Value::Array(items)) => {
                assert_eq!(items[1], Value::Str("b\\c".into()));
            }
            other => panic!("tags: {other:?}"),
        }
    }

    #[test]
    fn parse_handles_literals_whitespace_and_unicode() {
        let v = parse(" { \"a\" : [ true , false , null , -1.5e2 ] , \"é\" : \"☃\" } ").unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Value::Array(vec![
                Value::Bool(true),
                Value::Bool(false),
                Value::Null,
                Value::Num(-150.0),
            ]))
        );
        assert_eq!(v.get("é").and_then(Value::as_str), Some("☃"));
        assert_eq!(parse("\"\\u0041\"").unwrap(), Value::Str("A".into()));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "\"open",
            "{\"a\":1} extra",
            "tru",
        ] {
            let err = parse(bad).expect_err(bad);
            assert!(err.to_string().contains("invalid JSON"), "{bad}: {err}");
        }
    }

    #[test]
    fn u64_precision_holds_for_span_totals() {
        // Largest span total we realistically store: hours in ns — well
        // under 2^53, so f64 round-trips exactly.
        let ns: u64 = 3_600_000_000_000 * 24;
        let text = format!("{{\"t\":{ns}}}");
        assert_eq!(
            parse(&text).unwrap().get("t").and_then(Value::as_u64),
            Some(ns)
        );
    }
}

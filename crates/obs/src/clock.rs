//! The workspace's only sanctioned clock.
//!
//! `droplens lint`'s `no-wallclock` rule bans `Instant::now` /
//! `SystemTime::now` outside this crate, so that output-affecting code
//! can never branch on the time of day. Code that legitimately needs a
//! duration — queue-wait measurement in `droplens-par`, experiment
//! timing in `droplens-core` — takes it through a [`Stopwatch`], which
//! keeps the clock read here and hands out only elapsed durations.
//!
//! Code that needs an *advancing timeline* — the windowed metrics in
//! [`crate::window`], the serve telemetry plane built on them — takes a
//! [`Clock`] instead: a shareable time source that reads the real
//! monotonic clock by default and a test-controlled counter under
//! [`Clock::mock`], so window expiry and rate math are deterministic in
//! tests without sleeping.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A started monotonic stopwatch. `Copy`, so it can be captured by the
/// many closures of a fork-join fan-out and read on any worker.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed nanoseconds, saturating at `u64::MAX`.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A shareable time source reporting nanoseconds since its creation.
///
/// [`Clock::real`] anchors at the monotonic clock, so `now_ns` is the
/// process-relative elapsed time; cloning shares the anchor. Under
/// [`Clock::mock`] time stands still until [`Clock::advance`] moves it,
/// which is what makes ring-buffer window expiry testable: record, jump
/// the clock past the window, and assert the samples are gone — no
/// sleeps, no flakes.
#[derive(Debug, Clone)]
pub struct Clock(Arc<ClockInner>);

#[derive(Debug)]
enum ClockInner {
    Real(Instant),
    Mock(AtomicU64),
}

impl Default for Clock {
    fn default() -> Clock {
        Clock::real()
    }
}

impl Clock {
    /// A real monotonic clock anchored now.
    pub fn real() -> Clock {
        Clock(Arc::new(ClockInner::Real(Instant::now())))
    }

    /// A mock clock starting at zero; only [`Clock::advance`] moves it.
    pub fn mock() -> Clock {
        Clock(Arc::new(ClockInner::Mock(AtomicU64::new(0))))
    }

    /// Nanoseconds since the clock's creation (saturating at
    /// `u64::MAX`); the mock's current reading.
    pub fn now_ns(&self) -> u64 {
        match &*self.0 {
            ClockInner::Real(anchor) => {
                u64::try_from(anchor.elapsed().as_nanos()).unwrap_or(u64::MAX)
            }
            ClockInner::Mock(ns) => ns.load(Ordering::Relaxed),
        }
    }

    /// Advance a mock clock by `d`. No-op on a real clock (the
    /// monotonic clock advances itself).
    pub fn advance(&self, d: Duration) {
        if let ClockInner::Mock(ns) = &*self.0 {
            let add = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
            ns.fetch_add(add, Ordering::Relaxed);
        }
    }

    /// True for clocks built with [`Clock::mock`].
    pub fn is_mock(&self) -> bool {
        matches!(&*self.0, ClockInner::Mock(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ns();
        let b = sw.elapsed_ns();
        assert!(b >= a);
        assert!(sw.elapsed().as_nanos() as u64 >= a);
    }

    #[test]
    fn real_clock_advances_on_its_own() {
        let clock = Clock::real();
        assert!(!clock.is_mock());
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
        // advance is a documented no-op for real clocks.
        clock.advance(Duration::from_secs(1));
        assert!(clock.now_ns() < 1_000_000_000 + a + 60_000_000_000);
    }

    #[test]
    fn mock_clock_only_moves_when_told() {
        let clock = Clock::mock();
        assert!(clock.is_mock());
        assert_eq!(clock.now_ns(), 0);
        clock.advance(Duration::from_millis(3));
        assert_eq!(clock.now_ns(), 3_000_000);
        // Clones share the timeline.
        let twin = clock.clone();
        twin.advance(Duration::from_nanos(7));
        assert_eq!(clock.now_ns(), 3_000_007);
    }
}

//! The workspace's only sanctioned clock.
//!
//! `droplens lint`'s `no-wallclock` rule bans `Instant::now` /
//! `SystemTime::now` outside this crate, so that output-affecting code
//! can never branch on the time of day. Code that legitimately needs a
//! duration — queue-wait measurement in `droplens-par`, experiment
//! timing in `droplens-core` — takes it through a [`Stopwatch`], which
//! keeps the clock read here and hands out only elapsed durations.

use std::time::{Duration, Instant};

/// A started monotonic stopwatch. `Copy`, so it can be captured by the
/// many closures of a fork-join fan-out and read on any worker.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed nanoseconds, saturating at `u64::MAX`.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ns();
        let b = sw.elapsed_ns();
        assert!(b >= a);
        assert!(sw.elapsed().as_nanos() as u64 >= a);
    }
}

//! SIGINT/SIGTERM → graceful drain.
//!
//! The handler is the minimal async-signal-safe program: store `true`
//! into a static `AtomicBool` and return. Everything else — stopping
//! the acceptor, shedding the queue, finishing requests in flight,
//! flushing metrics — happens on ordinary threads that poll
//! [`drain_requested`]. No allocation, locking, or IO ever runs in
//! signal context.
//!
//! The workspace forbids `unsafe_code`; this crate re-declares the lint
//! table with `deny` so the two audited sites below (the libc `signal`
//! declaration call and nothing else) can carry a targeted `#[allow]`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// True once SIGINT or SIGTERM has been delivered (or [`trigger`] ran).
pub fn drain_requested() -> bool {
    SIGNALLED.load(Ordering::SeqCst)
}

/// Set the flag by hand — what the signal handler does, callable from
/// tests and from in-process shutdown paths.
pub fn trigger() {
    SIGNALLED.store(true, Ordering::SeqCst);
}

/// Clear the flag (tests that install and re-run).
pub fn reset() {
    SIGNALLED.store(false, Ordering::SeqCst);
}

/// Spawn a thread that polls the flag and runs `on_drain` once when it
/// flips. The thread is a daemon in spirit: if the signal never comes,
/// it parks until process exit.
pub fn spawn_watcher(on_drain: impl FnOnce() + Send + 'static) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        while !drain_requested() {
            std::thread::sleep(Duration::from_millis(25));
        }
        on_drain();
    })
}

#[cfg(unix)]
mod imp {
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    // std already links libc on unix; declaring `signal` avoids a
    // dependency on the libc crate for this one call.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: one relaxed-to-seqcst atomic store.
        super::SIGNALLED.store(true, Ordering::SeqCst);
    }

    /// Install the handler for SIGINT and SIGTERM.
    #[allow(unsafe_code)] // audited: registers an atomic-store-only handler via libc signal(2)
    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal plumbing off unix; `drain_requested` only flips via
    /// [`super::trigger`].
    pub fn install() {}
}

/// Install the SIGINT/SIGTERM handlers (idempotent; no-op off unix).
pub fn install() {
    imp::install();
}

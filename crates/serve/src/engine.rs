//! The query engine: an [`Study`] indexed once, answering forever.
//!
//! [`Engine::answer`] is a pure function of the request and the
//! immutable study — the same call the offline pipeline makes for the
//! same question — so a served reply is byte-identical to the batch
//! answer regardless of worker count or thread interleaving. The chaos
//! acceptance test leans on exactly this: the load generator replays
//! every reply against a local `Engine` over the same study and
//! requires equality.

use std::sync::Arc;

use droplens_core::paper::{self, Target};
use droplens_core::Study;
use droplens_rpki::{RovOutcome, Tal};

use crate::protocol::{Episode, Reply, Request};

/// Shared read-only query state: the study plus the scorecard targets
/// computed once at startup.
pub struct Engine {
    study: Arc<Study>,
    targets: Vec<Target>,
}

impl Engine {
    /// Index `study` for serving. Computes the full scorecard once so
    /// scorecard queries are a render, not a recomputation.
    pub fn new(study: Arc<Study>) -> Engine {
        let targets = paper::scorecard(&study);
        Engine { study, targets }
    }

    /// The underlying study.
    pub fn study(&self) -> &Arc<Study> {
        &self.study
    }

    /// Answer one request. Never fails, never panics: every request
    /// that decodes has an answer.
    ///
    /// [`Request::Stats`] answers with the study-shape facts only; the
    /// server merges its live obs counters in before the reply goes out
    /// (see [`crate::server`]). All other replies are deterministic.
    pub fn answer(&self, req: &Request) -> Reply {
        match req {
            Request::Ping => Reply::Pong,
            Request::Visibility { prefix, date } => {
                let observing = self.study.bgp.peers_observing(prefix, *date) as u32;
                let total = self.study.peers.len() as u32;
                Reply::Visibility {
                    routed: self.study.routed_at(prefix, *date),
                    observing,
                    total,
                    fraction: self.study.bgp.visibility(prefix, *date),
                }
            }
            Request::Rov {
                prefix,
                origin,
                date,
                all_tals,
            } => {
                let tals: &[Tal] = if *all_tals {
                    &Tal::ALL
                } else {
                    &Tal::PRODUCTION
                };
                let outcome = match self.study.roa.validate_at(prefix, *origin, *date, tals) {
                    RovOutcome::Valid => 0,
                    RovOutcome::Invalid => 1,
                    RovOutcome::NotFound => 2,
                };
                let covering = self
                    .study
                    .roa
                    .roas_covering_at(prefix, *date, tals)
                    .iter()
                    .map(|roa| roa.to_string())
                    .collect(); // lint: allow(no-unbounded-collect) — bounded by covering ROAs
                Reply::Rov { outcome, covering }
            }
            Request::DropListed { prefix, date } => Reply::DropListed {
                listed: self.study.drop.listed_on(prefix, *date),
            },
            Request::DropHistory { prefix } => {
                let episodes = self
                    .study
                    .drop
                    .for_prefix(prefix)
                    .iter()
                    .map(|entry| Episode {
                        added: entry.added,
                        removed: entry.removed,
                        sbl: entry.sbl.map(|s| s.to_string()),
                    })
                    .collect(); // lint: allow(no-unbounded-collect) — bounded by the prefix's episodes
                Reply::DropHistory { episodes }
            }
            Request::Scorecard { source } => {
                let text = match source {
                    None => paper::render(&self.targets),
                    Some(needle) => {
                        let slice: Vec<Target> = self
                            .targets
                            .iter()
                            .filter(|t| t.source.contains(needle.as_str()))
                            .cloned()
                            .collect(); // lint: allow(no-unbounded-collect) — bounded by scorecard size
                        paper::render(&slice)
                    }
                };
                Reply::Scorecard { text }
            }
            Request::Stats => Reply::Stats {
                pairs: self.stats_pairs(),
            },
            // The engine has no live state: the server overwrites the
            // empty document with its telemetry snapshot, the same way
            // it merges live counters into Stats.
            Request::Metrics => Reply::Metrics {
                json: String::new(),
            },
        }
    }

    /// Study-shape facts for the `stats` health query, sorted by name.
    /// The server appends its live obs counters after these.
    pub fn stats_pairs(&self) -> Vec<(String, u64)> {
        vec![
            (
                "study.drop_entries".to_owned(),
                self.study.entries.len() as u64,
            ),
            ("study.peers".to_owned(), self.study.peers.len() as u64),
            (
                "study.scorecard_targets".to_owned(),
                self.targets.len() as u64,
            ),
        ]
    }
}

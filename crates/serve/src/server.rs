//! The server: bounded accept queue, worker pool, deadline-guarded
//! connections, typed overload shedding, and graceful drain.
//!
//! Architecture (all std, no async runtime):
//!
//! ```text
//!   acceptor thread ──try_send──▶ bounded queue ──recv──▶ N workers
//!        │                            │                       │
//!        │ full → Busy + close        │ drain → Busy + close  │ serve
//!        ▼                            ▼                       ▼
//!    stops on the shutdown flag; dropping the sender ends the workers
//! ```
//!
//! * The acceptor polls a nonblocking listener so it can observe the
//!   shutdown flag between accepts.
//! * The queue is a `sync_channel` of depth [`ServerConfig::queue_depth`];
//!   when `try_send` fails the acceptor answers [`Reply::Busy`] inside
//!   the write deadline and closes — overload is a typed reply, never an
//!   unbounded queue and never a hang.
//! * Workers check the shutdown flag **between** requests only: a reply
//!   in flight always goes out whole (single `write_all` per frame), so
//!   a drain can tear nothing.
//! * A malformed frame closes only its own connection, after a best-
//!   effort located [`Reply::Error`]; the fault is counted and sampled
//!   in the [`ServeLedger`], mirroring the ingestion quarantine.

use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use droplens_obs::{Clock, WindowConfig};

use crate::engine::Engine;
use crate::net::DeadlineStream;
use crate::protocol::{self, Reply, Request, WireError};
use crate::telemetry::{request_args, LifetimeTotals, RequestTiming, Telemetry};

/// How many fault messages the ledger retains verbatim.
pub const LEDGER_SAMPLES_KEPT: usize = 16;

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (the bound address is on
    /// the handle).
    pub addr: std::net::SocketAddr,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Bounded queue depth between acceptor and workers; accepts beyond
    /// it shed with [`Reply::Busy`].
    pub queue_depth: usize,
    /// Read/write deadline installed on every connection.
    pub deadline: Duration,
    /// Requests slower than this land in the telemetry plane's
    /// slow-query ledger with their args and timing breakdown.
    pub slow_threshold: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: std::net::SocketAddr::from(([127, 0, 0, 1], 0)),
            workers: 4,
            queue_depth: 64,
            deadline: Duration::from_secs(2),
            slow_threshold: Duration::from_millis(100),
        }
    }
}

/// Quarantine-style ledger of per-connection faults: counts plus the
/// first [`LEDGER_SAMPLES_KEPT`] messages verbatim.
#[derive(Debug, Clone, Default)]
pub struct ServeLedger {
    /// Connections killed by a frame that did not decode.
    pub malformed: u64,
    /// Connections killed by a transport error (timeout, reset, torn
    /// read) outside a clean between-frames EOF.
    pub io_errors: u64,
    /// Sampled fault messages, in arrival order.
    pub samples: Vec<String>,
}

impl ServeLedger {
    fn record(&mut self, malformed: bool, message: String) {
        if malformed {
            self.malformed += 1;
        } else {
            self.io_errors += 1;
        }
        if self.samples.len() < LEDGER_SAMPLES_KEPT {
            self.samples.push(message);
        }
    }

    /// Render as the JSON artifact CI uploads.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"malformed\": {},\n", self.malformed));
        out.push_str(&format!("  \"io_errors\": {},\n", self.io_errors));
        out.push_str("  \"samples\": [\n");
        for (i, s) in self.samples.iter().enumerate() {
            let comma = if i + 1 == self.samples.len() { "" } else { "," };
            out.push_str(&format!("    {}{}\n", json_string(s), comma));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// What the server did over its lifetime; returned by
/// [`ServerHandle::stop`].
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Connections accepted and handed to workers.
    pub connections: u64,
    /// Requests answered (any reply kind except shed `Busy`).
    pub queries: u64,
    /// Connections shed with a typed `Busy` (queue full or draining).
    pub busy: u64,
    /// The fault ledger.
    pub ledger: ServeLedger,
}

impl ServeReport {
    /// One-line summary for logs and the CLI.
    pub fn summary(&self) -> String {
        format!(
            "served {} queries over {} connections ({} shed busy, {} malformed, {} io errors)",
            self.queries, self.connections, self.busy, self.ledger.malformed, self.ledger.io_errors
        )
    }
}

/// Obs handles the hot path bumps without registry lookups.
struct Counters {
    connections: droplens_obs::Counter,
    queries: droplens_obs::Counter,
    busy: droplens_obs::Counter,
    malformed: droplens_obs::Counter,
    io_errors: droplens_obs::Counter,
    latency_ns: droplens_obs::Histogram,
}

impl Counters {
    fn new() -> Counters {
        let reg = droplens_obs::global();
        Counters {
            connections: reg.counter("serve.connections"),
            queries: reg.counter("serve.queries"),
            busy: reg.counter("serve.busy"),
            malformed: reg.counter("serve.malformed"),
            io_errors: reg.counter("serve.io_errors"),
            latency_ns: reg.histogram("serve.latency_ns"),
        }
    }

    /// Live counter pairs merged into a `stats` reply, sorted by name.
    fn stats_pairs(&self) -> Vec<(String, u64)> {
        vec![
            ("serve.busy".to_owned(), self.busy.value()),
            ("serve.connections".to_owned(), self.connections.value()),
            ("serve.io_errors".to_owned(), self.io_errors.value()),
            ("serve.malformed".to_owned(), self.malformed.value()),
            ("serve.queries".to_owned(), self.queries.value()),
        ]
    }

    /// The same counters as a snapshot struct for the telemetry plane.
    fn totals(&self) -> LifetimeTotals {
        LifetimeTotals {
            connections: self.connections.value(),
            queries: self.queries.value(),
            busy: self.busy.value(),
            malformed: self.malformed.value(),
            io_errors: self.io_errors.value(),
        }
    }
}

/// A connection waiting in the bounded queue, stamped on accept so the
/// pulling worker can charge the queue-wait phase.
struct Queued {
    conn: DeadlineStream,
    accepted_ns: u64,
}

/// State shared by the acceptor and every worker.
struct Shared {
    engine: Arc<Engine>,
    counters: Counters,
    telemetry: Telemetry,
    queue_capacity: usize,
    workers: usize,
    ledger: Mutex<ServeLedger>,
    shutdown: AtomicBool,
}

impl Shared {
    /// Render the live telemetry snapshot (what `Metrics` answers).
    fn metrics_json(&self) -> String {
        self.telemetry
            .snapshot_json(self.counters.totals(), self.queue_capacity, self.workers)
    }
}

/// The server's entry point. See the module docs for the architecture.
pub struct Server;

/// A running server: its bound address plus the handle to stop it.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the worker pool and the acceptor, and return the
    /// handle. The engine is shared read-only across all workers.
    pub fn start(engine: Arc<Engine>, config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let slow_ns = u64::try_from(config.slow_threshold.as_nanos()).unwrap_or(u64::MAX);
        let shared = Arc::new(Shared {
            engine,
            counters: Counters::new(),
            telemetry: Telemetry::new(Clock::real(), WindowConfig::default(), slow_ns),
            queue_capacity: config.queue_depth.max(1),
            workers: config.workers.max(1),
            ledger: Mutex::new(ServeLedger::default()),
            shutdown: AtomicBool::new(false),
        });

        let (tx, rx) = sync_channel::<Queued>(config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::with_capacity(config.workers.max(1));
        for i in 0..config.workers.max(1) {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &shared))?,
            );
        }

        let deadline = config.deadline;
        let acceptor_shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("serve-acceptor".to_owned())
            .spawn(move || accept_loop(listener, tx, deadline, &acceptor_shared))?;

        Ok(ServerHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }
}

impl ServerHandle {
    /// The address the listener actually bound (resolves port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// True once a drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// The live telemetry snapshot, exactly what a `Metrics` frame
    /// answers — for in-process consumers (tests, the CLI's
    /// `--metrics-snapshot` artifact) without a socket round-trip.
    pub fn metrics_json(&self) -> String {
        self.shared.metrics_json()
    }

    /// Request a drain without waiting: stop accepting, shed the queue,
    /// finish requests in flight. Idempotent; safe from a signal
    /// watcher thread.
    pub fn request_drain(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Drain and wait for every thread to finish, then return the
    /// report. In-flight replies complete whole; nothing is torn.
    pub fn stop(mut self) -> ServeReport {
        self.request_drain();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let c = &self.shared.counters;
        let ledger = self
            .shared
            .ledger
            .lock()
            .map(|g| g.clone())
            .unwrap_or_default();
        ServeReport {
            connections: c.connections.value(),
            queries: c.queries.value(),
            busy: c.busy.value(),
            ledger,
        }
    }
}

/// Accept until the shutdown flag; shed to `Busy` when the queue is
/// full. Dropping `tx` on exit is what ends the workers.
fn accept_loop(
    listener: TcpListener,
    tx: std::sync::mpsc::SyncSender<Queued>,
    deadline: Duration,
    shared: &Shared,
) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let Ok(conn) = DeadlineStream::new(stream, deadline) else {
                    // Peer vanished between accept and setsockopt.
                    continue;
                };
                let _ = conn.set_nodelay(true);
                let queued = Queued {
                    conn,
                    accepted_ns: shared.telemetry.clock().now_ns(),
                };
                // Depth goes up before the send: a worker can pull the
                // connection the instant it lands, and a snapshot must
                // never see that dequeue before this enqueue.
                shared.telemetry.enqueued();
                match tx.try_send(queued) {
                    Ok(()) => {}
                    Err(TrySendError::Full(q)) => {
                        shared.telemetry.enqueue_reverted();
                        let mut conn = q.conn;
                        shed(&mut conn, shared);
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        shared.telemetry.enqueue_reverted();
                        break;
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    // tx drops here: workers finish the queued backlog (as Busy, since
    // the flag is set by the time they pull) and exit on Disconnected.
}

/// Typed overload shedding: one `Busy` frame inside the write deadline,
/// then close.
fn shed(conn: &mut DeadlineStream, shared: &Shared) {
    shared.counters.busy.inc();
    shared.telemetry.shed();
    let _ = Reply::Busy.write_to(conn);
}

fn worker_loop(rx: &Arc<Mutex<Receiver<Queued>>>, shared: &Shared) {
    let clock = shared.telemetry.clock().clone();
    loop {
        // Hold the lock only across the recv so workers pull in turn.
        let queued = {
            let guard = match rx.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            match guard.recv() {
                Ok(queued) => queued,
                Err(_) => break, // acceptor gone, queue drained
            }
        };
        let mut conn = queued.conn;
        shared
            .telemetry
            .dequeued(clock.now_ns().saturating_sub(queued.accepted_ns));
        if shared.shutdown.load(Ordering::SeqCst) {
            // Draining: queued-but-unserved connections get a typed
            // Busy, not silence and not service.
            shed(&mut conn, shared);
            continue;
        }
        shared.counters.connections.inc();
        shared.telemetry.conn_started();
        let start_ns = clock.now_ns();
        handle_conn(&mut conn, shared);
        shared.telemetry.conn_finished();
        droplens_obs::global().record_span(
            "serve/conn",
            Duration::from_nanos(clock.now_ns().saturating_sub(start_ns)),
        );
    }
}

/// Serve one connection until clean EOF, a fault, or a drain request.
/// The shutdown flag is consulted only between requests: a reply being
/// written always goes out whole.
fn handle_conn(conn: &mut DeadlineStream, shared: &Shared) {
    let clock = shared.telemetry.clock().clone();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // The blocking wait for the next frame is client think-time;
        // the timed decode phase starts once the frame bytes are here.
        let (kind, payload) = match protocol::read_frame(conn) {
            Ok(None) => return, // peer closed between frames
            Ok(Some(frame)) => frame,
            Err(WireError::Frame(e)) => {
                malformed_fault(conn, shared, &e);
                return;
            }
            Err(WireError::Io(e)) => {
                shared.counters.io_errors.inc();
                shared.telemetry.io_error();
                record_fault(shared, false, e.to_string());
                return;
            }
        };
        let read_done = clock.now_ns();
        let req = match Request::decode(kind, &payload) {
            Ok(req) => req,
            Err(e) => {
                // Malformed or adversarial bytes: count, sample, answer
                // with a located error (best effort), kill only this
                // connection.
                malformed_fault(conn, shared, &e);
                return;
            }
        };
        let decode_done = clock.now_ns();
        let mut reply = shared.engine.answer(&req);
        if let Reply::Stats { pairs } = &mut reply {
            pairs.extend(shared.counters.stats_pairs());
            pairs.sort();
        }
        if let Reply::Metrics { json } = &mut reply {
            // Like Stats: the engine leaves the live part to the server.
            *json = shared.metrics_json();
        }
        let engine_done = clock.now_ns();
        shared.counters.queries.inc();
        let write_ok = reply.write_to(conn).is_ok();
        let timing = RequestTiming {
            decode_ns: decode_done.saturating_sub(read_done),
            engine_ns: engine_done.saturating_sub(decode_done),
            write_ns: clock.now_ns().saturating_sub(engine_done),
        };
        shared.counters.latency_ns.record(timing.total_ns());
        droplens_obs::global().record_span(
            &format!("serve/conn/{}", req.label()),
            Duration::from_nanos(timing.total_ns()),
        );
        shared
            .telemetry
            .request_served(&req, write_ok, timing, || request_args(&req));
        if !write_ok {
            // Peer gone mid-reply (reset or write deadline); isolated
            // to this connection. The per-kind error series was already
            // bumped by `request_served`.
            shared.counters.io_errors.inc();
            shared.telemetry.io_error();
            return;
        }
    }
}

/// Shared malformed-frame exit: count, sample, best-effort located
/// error reply, and the caller kills only this connection.
fn malformed_fault(conn: &mut DeadlineStream, shared: &Shared, e: &crate::protocol::FrameError) {
    shared.counters.malformed.inc();
    shared.telemetry.malformed();
    record_fault(shared, true, e.to_string());
    let _ = Reply::Error {
        message: e.to_string(),
    }
    .write_to(conn);
}

fn record_fault(shared: &Shared, malformed: bool, message: String) {
    let mut ledger = match shared.ledger.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    ledger.record(malformed, message);
}

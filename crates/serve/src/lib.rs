//! droplens-serve: a long-lived, fault-tolerant query service over the
//! indexed [`Study`](droplens_core::Study).
//!
//! The batch pipeline builds the expensive immutable study once; this
//! crate turns it into shared read-only state behind a persistent TCP
//! server answering queries — prefix visibility on a date, ROV
//! validity, DROP membership and history, scorecard slices, and a
//! `stats` health query exposing the obs counters — over a
//! length-prefixed binary protocol with a versioned frame header
//! ([`protocol`]).
//!
//! The robustness contract, end to end:
//!
//! * **deadlines everywhere** — every socket is wrapped in a
//!   [`DeadlineStream`](net::DeadlineStream) that configures read and
//!   write timeouts at construction; `droplens lint`'s
//!   `no-deadline-free-io` rule bans raw socket IO on these paths;
//! * **bounded work, explicit shedding** — accepted connections enter a
//!   bounded queue; when it is full the acceptor answers with a typed
//!   [`Reply::Busy`](protocol::Reply::Busy) within the write deadline
//!   and closes, never queueing unboundedly and never hanging;
//! * **per-connection error isolation** — a malformed or adversarial
//!   frame kills only its own connection; the fault is counted and
//!   sampled in a quarantine-style [`ServeLedger`](server::ServeLedger);
//! * **graceful drain** — on shutdown (signal or
//!   [`ServerHandle::stop`](server::ServerHandle::stop)) the listener
//!   closes, queued connections get a typed `Busy`, the request in
//!   flight finishes its reply whole (no torn frames), and the final
//!   metrics flush;
//! * **retries under a budget** — the bundled [`Client`](client::Client)
//!   retries connect failures, timeouts, torn replies, and `Busy` with
//!   jittered exponential backoff from an explicit seed, up to a hard
//!   attempt budget.
//!
//! A running server is observable while it runs: the [`telemetry`]
//! plane keeps windowed per-kind q/s and latency quantiles, live
//! queue-depth/in-flight gauges, per-phase timings, and a bounded
//! slow-query ledger, answered over the wire as a `Metrics` frame
//! (one stable JSON document) and consumed by `droplens top` and
//! `droplens slo check`.
//!
//! The [`loadgen`] module hammers a server with many concurrent
//! client threads while obs records latency histograms, and
//! double-checks every deterministic reply byte-for-byte against the
//! offline engine — the chaos acceptance gate in `tests/serve.rs` runs
//! exactly that through `droplens-faults`' seeded network-fault proxy.

#![warn(missing_docs)]

pub mod client;
pub mod engine;
pub mod loadgen;
pub mod net;
pub mod protocol;
pub mod server;
pub mod shutdown;
pub mod telemetry;

pub use client::{Client, ClientConfig, ClientError, RetryPolicy};
pub use engine::Engine;
pub use loadgen::{LoadConfig, LoadReport};
pub use protocol::{FrameError, Reply, Request, WireError, KIND_LABELS};
pub use server::{ServeLedger, ServeReport, Server, ServerConfig, ServerHandle};
pub use telemetry::{Telemetry, METRICS_SCHEMA};

//! The `droplens-serve/1` wire protocol: length-prefixed binary frames
//! with a versioned header.
//!
//! ```text
//! +----+----+---------+------+------------+----------------+-----------------+
//! | 'D'| 'L'| version | kind | len u32 LE | check u32 LE   | payload (len B) |
//! +----+----+---------+------+------------+----------------+-----------------+
//! ```
//!
//! `check` is an FNV-1a digest over version, kind, the length bytes,
//! and the payload: a single flipped bit anywhere past the magic fails
//! the frame with a located error instead of silently changing an
//! answer, which is what lets the client treat *any* corruption in
//! transit as retryable. (TCP's own checksum is too weak a guarantee
//! once a deliberately hostile or fault-injecting middlebox — like the
//! chaos proxy in `droplens-faults` — sits on the path.)
//!
//! Request kinds live in `0x01..=0x3f`, reply kinds in `0x81..=0xbf`,
//! control replies (`Busy`, `Error`) in `0xf0..=0xff` — a frame can
//! never be mistaken for the other direction. Payloads are
//! little-endian scalars and `u32`-length-prefixed UTF-8 strings;
//! prefixes and dates travel in their canonical text forms so decoding
//! reuses the same validated `FromStr` parsers the archive loaders use.
//!
//! Decoding never panics. Every malformed byte — bad magic, unknown
//! version or kind, a length over [`MAX_PAYLOAD`], a payload that ends
//! mid-field or carries trailing bytes — surfaces as a located
//! [`FrameError`] naming the frame being decoded and the byte offset
//! the decoder stopped at. Transport failures (timeouts, resets, torn
//! reads) stay separate as [`WireError::Io`], which is what the client
//! keys its retry decisions on.

use std::fmt;
use std::io::{Read, Write};

use droplens_net::{Asn, Date, Ipv4Prefix};

/// First two bytes of every frame.
pub const MAGIC: [u8; 2] = *b"DL";
/// Protocol version carried in byte 2 of the header.
pub const VERSION: u8 = 1;
/// Hard cap on payload length; a header announcing more is malformed
/// (adversarial lengths must not drive allocation).
pub const MAX_PAYLOAD: u32 = 1 << 20;
/// Bytes in the fixed frame header.
pub const HEADER_LEN: usize = 12;

/// FNV-1a over the integrity-protected header bytes and the payload.
fn checksum(version: u8, kind: u8, payload: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    let mut eat = |b: u8| {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    };
    eat(version);
    eat(kind);
    for b in (payload.len() as u32).to_le_bytes() {
        eat(b);
    }
    for &b in payload {
        eat(b);
    }
    h
}

/// A located decoding error: which frame, where in it, and what was
/// wrong. The service-side quarantine ledger samples these verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError {
    /// What was being decoded (`"header"`, `"Visibility request"`, ...).
    pub frame: String,
    /// Byte offset into the frame (header) or payload (body) where
    /// decoding stopped.
    pub offset: usize,
    /// What was wrong.
    pub detail: String,
}

impl FrameError {
    fn new(frame: impl Into<String>, offset: usize, detail: impl Into<String>) -> FrameError {
        FrameError {
            frame: frame.into(),
            offset,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "malformed {} at byte {}: {}",
            self.frame, self.offset, self.detail
        )
    }
}

impl std::error::Error for FrameError {}

/// Anything that can go wrong reading or writing a frame.
#[derive(Debug)]
pub enum WireError {
    /// Transport failure: timeout, reset, torn read mid-frame.
    Io(std::io::Error),
    /// The bytes arrived but do not decode.
    Frame(FrameError),
}

impl WireError {
    /// True when the IO error is a read/write deadline expiring (the
    /// two kinds `std::net` uses for socket timeouts).
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            WireError::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            )
        )
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "transport: {e}"),
            WireError::Frame(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<FrameError> for WireError {
    fn from(e: FrameError) -> WireError {
        WireError::Frame(e)
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

/// One query. Everything the engine can answer about the study.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with [`Reply::Pong`].
    Ping,
    /// Was `prefix` (or any covering/covered prefix) visible on `date`,
    /// and by how many peers?
    Visibility {
        /// The prefix asked about.
        prefix: Ipv4Prefix,
        /// The observation day.
        date: Date,
    },
    /// RFC 6811 route origin validation of one announcement.
    Rov {
        /// The announced prefix.
        prefix: Ipv4Prefix,
        /// The origin ASN of the announcement.
        origin: Asn,
        /// The validation day.
        date: Date,
        /// Validate against all five TALs instead of the production set.
        all_tals: bool,
    },
    /// Was `prefix` on the DROP list on `date`?
    DropListed {
        /// The prefix asked about.
        prefix: Ipv4Prefix,
        /// The membership day.
        date: Date,
    },
    /// Every listing episode of `prefix`, in listing order.
    DropHistory {
        /// The prefix asked about.
        prefix: Ipv4Prefix,
    },
    /// The paper-vs-measured scorecard, optionally sliced to the
    /// targets whose source column contains `source`.
    Scorecard {
        /// Substring filter over the scorecard's source column
        /// (`"fig2"`, `"Table 1"`, ...); `None` is the full scorecard.
        source: Option<String>,
    },
    /// Health: study facts plus the server's live obs counters.
    Stats,
    /// Live telemetry: the server's windowed metrics snapshot
    /// (per-kind q/s and latency quantiles, queue depth, shed counts,
    /// slow-query ledger) as one stable JSON document.
    Metrics,
}

/// Stable per-kind labels, in [`Request::kind_index`] order. The
/// telemetry plane, the load generator's per-kind report, and the SLO
/// spec all key on these names.
pub const KIND_LABELS: [&str; 8] = [
    "ping",
    "visibility",
    "rov",
    "drop_listed",
    "drop_history",
    "scorecard",
    "stats",
    "metrics",
];

/// One answer.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Visibility`].
    Visibility {
        /// True when the routed predicate held on the day.
        routed: bool,
        /// Peers observing the exact prefix that day.
        observing: u32,
        /// Total collector peers.
        total: u32,
        /// `observing / total` (bit-exact f64, transported as bits).
        fraction: f64,
    },
    /// Answer to [`Request::Rov`].
    Rov {
        /// 0 = Valid, 1 = Invalid, 2 = NotFound.
        outcome: u8,
        /// Rendered ROAs covering the prefix on the day.
        covering: Vec<String>,
    },
    /// Answer to [`Request::DropListed`].
    DropListed {
        /// True when the prefix was on the list that day.
        listed: bool,
    },
    /// Answer to [`Request::DropHistory`].
    DropHistory {
        /// The listing episodes.
        episodes: Vec<Episode>,
    },
    /// Answer to [`Request::Scorecard`]: the rendered table, byte-equal
    /// to the offline `droplens scorecard` rendering for the full set.
    Scorecard {
        /// The rendered scorecard slice.
        text: String,
    },
    /// Answer to [`Request::Stats`]: sorted `name → value` pairs.
    Stats {
        /// The counter pairs, sorted by name.
        pairs: Vec<(String, u64)>,
    },
    /// Answer to [`Request::Metrics`]: the live telemetry snapshot.
    Metrics {
        /// A stable `droplens-metrics/1` JSON document (see
        /// `droplens_serve::telemetry`).
        json: String,
    },
    /// Typed overload shedding: the work queue is full or the server is
    /// draining. Retry later; nothing was processed.
    Busy,
    /// The server could not act on the frame it read (malformed request,
    /// usually corruption in transit). The connection closes after this.
    Error {
        /// What was wrong, located.
        message: String,
    },
}

/// One DROP listing episode on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Episode {
    /// First snapshot day the prefix appeared.
    pub added: Date,
    /// First snapshot day it was gone again, if it was removed.
    pub removed: Option<Date>,
    /// SBL record reference, if the list carried one.
    pub sbl: Option<String>,
}

// Frame kinds. Requests 0x01..=0x3f, replies 0x81..=0xbf, control
// 0xf0..=0xff.
const K_PING: u8 = 0x01;
const K_VISIBILITY: u8 = 0x02;
const K_ROV: u8 = 0x03;
const K_DROP_LISTED: u8 = 0x04;
const K_DROP_HISTORY: u8 = 0x05;
const K_SCORECARD: u8 = 0x06;
const K_STATS: u8 = 0x07;
const K_METRICS: u8 = 0x08;
const K_R_PONG: u8 = 0x81;
const K_R_VISIBILITY: u8 = 0x82;
const K_R_ROV: u8 = 0x83;
const K_R_DROP_LISTED: u8 = 0x84;
const K_R_DROP_HISTORY: u8 = 0x85;
const K_R_SCORECARD: u8 = 0x86;
const K_R_STATS: u8 = 0x87;
const K_R_METRICS: u8 = 0x88;
const K_R_BUSY: u8 = 0xf0;
const K_R_ERROR: u8 = 0xf1;

/// Payload encoder: little-endian scalars, length-prefixed strings.
#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn opt_str(&mut self, s: Option<&str>) {
        match s {
            None => self.u8(0),
            Some(s) => {
                self.u8(1);
                self.str(s);
            }
        }
    }
}

/// Payload decoder: tracks the byte offset so every failure is located.
struct Dec<'a> {
    frame: &'static str,
    buf: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    fn new(frame: &'static str, buf: &'a [u8]) -> Dec<'a> {
        Dec { frame, buf, at: 0 }
    }

    fn err(&self, detail: impl Into<String>) -> FrameError {
        FrameError::new(self.frame, self.at, detail)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.buf.len() - self.at < n {
            return Err(self.err(format!(
                "payload ends after {} of {} expected bytes",
                self.buf.len() - self.at,
                n
            )));
        }
        let out = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn bool(&mut self) -> Result<bool, FrameError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            n => Err(self.err(format!("bool byte must be 0 or 1, got {n}"))),
        }
    }

    fn str(&mut self) -> Result<String, FrameError> {
        let len = self.u32()? as usize;
        if len > MAX_PAYLOAD as usize {
            return Err(self.err(format!("string length {len} exceeds {MAX_PAYLOAD}")));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| self.err(format!("string is not UTF-8: {e}")))
    }

    fn opt_str(&mut self) -> Result<Option<String>, FrameError> {
        if self.bool()? {
            Ok(Some(self.str()?))
        } else {
            Ok(None)
        }
    }

    /// Parse a decoded string field through `FromStr`, locating the
    /// failure at the field's start.
    fn parse<T: std::str::FromStr>(&mut self, what: &str) -> Result<T, FrameError>
    where
        T::Err: fmt::Display,
    {
        let at = self.at;
        let s = self.str()?;
        s.parse().map_err(|e: T::Err| FrameError {
            frame: self.frame.to_owned(),
            offset: at,
            detail: format!("bad {what} {s:?}: {e}"),
        })
    }

    fn finish(self) -> Result<(), FrameError> {
        if self.at != self.buf.len() {
            let n = self.buf.len() - self.at;
            return Err(self.err(format!(
                "{n} trailing byte{}",
                if n == 1 { "" } else { "s" }
            )));
        }
        Ok(())
    }
}

/// Assemble a full frame: header (with checksum) plus payload. Public
/// so tests can build arbitrary — including adversarial but correctly
/// checksummed — frames.
pub fn seal_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&checksum(VERSION, kind, payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Read one frame. `Ok(None)` is a clean EOF — the peer closed between
/// frames, which is the normal end of a connection. EOF *inside* a
/// frame is a torn read and surfaces as [`WireError::Io`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<(u8, Vec<u8>)>, WireError> {
    // First byte by hand so "closed before any byte" is distinguishable
    // from "died mid-header".
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    // Destructured rather than indexed: irrefutable array patterns
    // cannot panic, so the serve path stays clean for
    // `no-panic-in-request-path` without any escapes.
    let mut rest = [0u8; HEADER_LEN - 1];
    r.read_exact(&mut rest).map_err(WireError::Io)?;
    let [b0] = first;
    let [b1, version, kind, l0, l1, l2, l3, c0, c1, c2, c3] = rest;
    if [b0, b1] != MAGIC {
        return Err(FrameError::new("header", 0, format!("bad magic {b0:02x}{b1:02x}")).into());
    }
    if version != VERSION {
        return Err(FrameError::new(
            "header",
            2,
            format!("unsupported version {version} (speak {VERSION})"),
        )
        .into());
    }
    let len = u32::from_le_bytes([l0, l1, l2, l3]);
    let declared = u32::from_le_bytes([c0, c1, c2, c3]);
    if len > MAX_PAYLOAD {
        return Err(FrameError::new(
            "header",
            4,
            format!("payload length {len} exceeds the {MAX_PAYLOAD}-byte cap"),
        )
        .into());
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(WireError::Io)?;
    let computed = checksum(VERSION, kind, &payload);
    if computed != declared {
        return Err(FrameError::new(
            "header",
            8,
            format!(
                "checksum mismatch: frame says {declared:08x}, payload hashes to {computed:08x}"
            ),
        )
        .into());
    }
    Ok(Some((kind, payload)))
}

impl Request {
    /// Encode into a full frame.
    pub fn to_frame(&self) -> Vec<u8> {
        let mut e = Enc::default();
        let kind = match self {
            Request::Ping => K_PING,
            Request::Visibility { prefix, date } => {
                e.str(&prefix.to_string());
                e.str(&date.to_string());
                K_VISIBILITY
            }
            Request::Rov {
                prefix,
                origin,
                date,
                all_tals,
            } => {
                e.str(&prefix.to_string());
                e.u32(origin.value());
                e.str(&date.to_string());
                e.u8(u8::from(*all_tals));
                K_ROV
            }
            Request::DropListed { prefix, date } => {
                e.str(&prefix.to_string());
                e.str(&date.to_string());
                K_DROP_LISTED
            }
            Request::DropHistory { prefix } => {
                e.str(&prefix.to_string());
                K_DROP_HISTORY
            }
            Request::Scorecard { source } => {
                e.opt_str(source.as_deref());
                K_SCORECARD
            }
            Request::Stats => K_STATS,
            Request::Metrics => K_METRICS,
        };
        seal_frame(kind, &e.buf)
    }

    /// Write the frame in one `write_all` (a reply or request is never
    /// split across writes, so a drain can only cut *between* frames).
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), WireError> {
        w.write_all(&self.to_frame()).map_err(WireError::Io)
    }

    /// Decode one request payload.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Request, FrameError> {
        match kind {
            K_PING => {
                Dec::new("Ping request", payload).finish()?;
                Ok(Request::Ping)
            }
            K_VISIBILITY => {
                let mut d = Dec::new("Visibility request", payload);
                let prefix = d.parse("prefix")?;
                let date = d.parse("date")?;
                d.finish()?;
                Ok(Request::Visibility { prefix, date })
            }
            K_ROV => {
                let mut d = Dec::new("Rov request", payload);
                let prefix = d.parse("prefix")?;
                let origin = Asn(d.u32()?);
                let date = d.parse("date")?;
                let all_tals = d.bool()?;
                d.finish()?;
                Ok(Request::Rov {
                    prefix,
                    origin,
                    date,
                    all_tals,
                })
            }
            K_DROP_LISTED => {
                let mut d = Dec::new("DropListed request", payload);
                let prefix = d.parse("prefix")?;
                let date = d.parse("date")?;
                d.finish()?;
                Ok(Request::DropListed { prefix, date })
            }
            K_DROP_HISTORY => {
                let mut d = Dec::new("DropHistory request", payload);
                let prefix = d.parse("prefix")?;
                d.finish()?;
                Ok(Request::DropHistory { prefix })
            }
            K_SCORECARD => {
                let mut d = Dec::new("Scorecard request", payload);
                let source = d.opt_str()?;
                d.finish()?;
                Ok(Request::Scorecard { source })
            }
            K_STATS => {
                Dec::new("Stats request", payload).finish()?;
                Ok(Request::Stats)
            }
            K_METRICS => {
                Dec::new("Metrics request", payload).finish()?;
                Ok(Request::Metrics)
            }
            other => Err(FrameError::new(
                "header",
                3,
                format!("unknown request kind 0x{other:02x}"),
            )),
        }
    }

    /// Read one request. `Ok(None)` is a clean EOF between frames.
    pub fn read_from(r: &mut impl Read) -> Result<Option<Request>, WireError> {
        match read_frame(r)? {
            None => Ok(None),
            Some((kind, payload)) => Ok(Some(Request::decode(kind, &payload)?)),
        }
    }

    /// Stable label for counters and latency histograms; always
    /// `KIND_LABELS[self.kind_index()]`.
    pub fn label(&self) -> &'static str {
        KIND_LABELS[self.kind_index()]
    }

    /// Dense index of this request's kind into [`KIND_LABELS`], used
    /// by per-kind telemetry arrays.
    pub fn kind_index(&self) -> usize {
        match self {
            Request::Ping => 0,
            Request::Visibility { .. } => 1,
            Request::Rov { .. } => 2,
            Request::DropListed { .. } => 3,
            Request::DropHistory { .. } => 4,
            Request::Scorecard { .. } => 5,
            Request::Stats => 6,
            Request::Metrics => 7,
        }
    }
}

impl Reply {
    /// Encode into a full frame.
    pub fn to_frame(&self) -> Vec<u8> {
        let mut e = Enc::default();
        let kind = match self {
            Reply::Pong => K_R_PONG,
            Reply::Visibility {
                routed,
                observing,
                total,
                fraction,
            } => {
                e.u8(u8::from(*routed));
                e.u32(*observing);
                e.u32(*total);
                e.u64(fraction.to_bits());
                K_R_VISIBILITY
            }
            Reply::Rov { outcome, covering } => {
                e.u8(*outcome);
                e.u16(covering.len() as u16);
                for roa in covering {
                    e.str(roa);
                }
                K_R_ROV
            }
            Reply::DropListed { listed } => {
                e.u8(u8::from(*listed));
                K_R_DROP_LISTED
            }
            Reply::DropHistory { episodes } => {
                e.u16(episodes.len() as u16);
                for ep in episodes {
                    e.str(&ep.added.to_string());
                    e.opt_str(ep.removed.map(|d| d.to_string()).as_deref());
                    e.opt_str(ep.sbl.as_deref());
                }
                K_R_DROP_HISTORY
            }
            Reply::Scorecard { text } => {
                e.str(text);
                K_R_SCORECARD
            }
            Reply::Stats { pairs } => {
                e.u32(pairs.len() as u32);
                for (name, value) in pairs {
                    e.str(name);
                    e.u64(*value);
                }
                K_R_STATS
            }
            Reply::Metrics { json } => {
                e.str(json);
                K_R_METRICS
            }
            Reply::Busy => K_R_BUSY,
            Reply::Error { message } => {
                e.str(message);
                K_R_ERROR
            }
        };
        seal_frame(kind, &e.buf)
    }

    /// Write the frame in one `write_all`.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), WireError> {
        w.write_all(&self.to_frame()).map_err(WireError::Io)
    }

    /// Decode one reply payload.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Reply, FrameError> {
        match kind {
            K_R_PONG => {
                Dec::new("Pong reply", payload).finish()?;
                Ok(Reply::Pong)
            }
            K_R_VISIBILITY => {
                let mut d = Dec::new("Visibility reply", payload);
                let routed = d.bool()?;
                let observing = d.u32()?;
                let total = d.u32()?;
                let fraction = f64::from_bits(d.u64()?);
                d.finish()?;
                Ok(Reply::Visibility {
                    routed,
                    observing,
                    total,
                    fraction,
                })
            }
            K_R_ROV => {
                let mut d = Dec::new("Rov reply", payload);
                let outcome = d.u8()?;
                if outcome > 2 {
                    return Err(FrameError::new(
                        "Rov reply",
                        0,
                        format!("outcome must be 0..=2, got {outcome}"),
                    ));
                }
                let n = d.u16()?;
                let mut covering = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    covering.push(d.str()?);
                }
                d.finish()?;
                Ok(Reply::Rov { outcome, covering })
            }
            K_R_DROP_LISTED => {
                let mut d = Dec::new("DropListed reply", payload);
                let listed = d.bool()?;
                d.finish()?;
                Ok(Reply::DropListed { listed })
            }
            K_R_DROP_HISTORY => {
                let mut d = Dec::new("DropHistory reply", payload);
                let n = d.u16()?;
                let mut episodes = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let added = d.parse("date")?;
                    let removed = match d.opt_str()? {
                        None => None,
                        Some(s) => Some(s.parse::<Date>().map_err(|e| {
                            FrameError::new("DropHistory reply", d.at, format!("bad date: {e}"))
                        })?),
                    };
                    let sbl = d.opt_str()?;
                    episodes.push(Episode {
                        added,
                        removed,
                        sbl,
                    });
                }
                d.finish()?;
                Ok(Reply::DropHistory { episodes })
            }
            K_R_SCORECARD => {
                let mut d = Dec::new("Scorecard reply", payload);
                let text = d.str()?;
                d.finish()?;
                Ok(Reply::Scorecard { text })
            }
            K_R_STATS => {
                let mut d = Dec::new("Stats reply", payload);
                let n = d.u32()?;
                if n as usize > payload.len() {
                    return Err(FrameError::new(
                        "Stats reply",
                        0,
                        format!("pair count {n} exceeds the payload"),
                    ));
                }
                let mut pairs = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let name = d.str()?;
                    let value = d.u64()?;
                    pairs.push((name, value));
                }
                d.finish()?;
                Ok(Reply::Stats { pairs })
            }
            K_R_METRICS => {
                let mut d = Dec::new("Metrics reply", payload);
                let json = d.str()?;
                d.finish()?;
                Ok(Reply::Metrics { json })
            }
            K_R_BUSY => {
                Dec::new("Busy reply", payload).finish()?;
                Ok(Reply::Busy)
            }
            K_R_ERROR => {
                let mut d = Dec::new("Error reply", payload);
                let message = d.str()?;
                d.finish()?;
                Ok(Reply::Error { message })
            }
            other => Err(FrameError::new(
                "header",
                3,
                format!("unknown reply kind 0x{other:02x}"),
            )),
        }
    }

    /// Read one reply. `Ok(None)` is a clean EOF between frames.
    pub fn read_from(r: &mut impl Read) -> Result<Option<Reply>, WireError> {
        match read_frame(r)? {
            None => Ok(None),
            Some((kind, payload)) => Ok(Some(Reply::decode(kind, &payload)?)),
        }
    }

    /// Render the reply as the human text the `droplens query` command
    /// prints.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        match self {
            Reply::Pong => "pong\n".to_owned(),
            Reply::Visibility {
                routed,
                observing,
                total,
                fraction,
            } => format!(
                "routed: {routed}\nobserving peers: {observing}/{total} ({:.1}%)\n",
                fraction * 100.0
            ),
            Reply::Rov { outcome, covering } => {
                let mut out = format!(
                    "{}\n",
                    match outcome {
                        0 => "Valid",
                        1 => "Invalid",
                        _ => "NotFound",
                    }
                );
                for roa in covering {
                    let _ = writeln!(out, "  covered by {roa}");
                }
                out
            }
            Reply::DropListed { listed } => format!("listed: {listed}\n"),
            Reply::DropHistory { episodes } => {
                if episodes.is_empty() {
                    return "never listed\n".to_owned();
                }
                let mut out = String::new();
                for ep in episodes {
                    let _ = writeln!(
                        out,
                        "listed {} — {}{}",
                        ep.added,
                        ep.removed
                            .map(|d| d.to_string())
                            .unwrap_or_else(|| "(still listed)".to_owned()),
                        ep.sbl
                            .as_deref()
                            .map(|s| format!(" ({s})"))
                            .unwrap_or_default(),
                    );
                }
                out
            }
            Reply::Scorecard { text } => text.clone(),
            Reply::Stats { pairs } => {
                let mut out = String::new();
                for (name, value) in pairs {
                    let _ = writeln!(out, "{name} {value}");
                }
                out
            }
            Reply::Metrics { json } => {
                if json.ends_with('\n') {
                    json.clone()
                } else {
                    format!("{json}\n")
                }
            }
            Reply::Busy => "busy\n".to_owned(),
            Reply::Error { message } => format!("server error: {message}\n"),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code: panics are failures
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let bytes = req.to_frame();
        let mut cursor = &bytes[..];
        let back = Request::read_from(&mut cursor).unwrap().unwrap();
        assert_eq!(back, req);
    }

    fn roundtrip_reply(reply: Reply) {
        let bytes = reply.to_frame();
        let mut cursor = &bytes[..];
        let back = Reply::read_from(&mut cursor).unwrap().unwrap();
        assert_eq!(back, reply);
    }

    #[test]
    fn request_roundtrips() {
        let prefix: Ipv4Prefix = "198.51.100.0/24".parse().unwrap();
        let date: Date = "2020-06-15".parse().unwrap();
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Visibility { prefix, date });
        roundtrip_request(Request::Rov {
            prefix,
            origin: Asn(64500),
            date,
            all_tals: true,
        });
        roundtrip_request(Request::DropListed { prefix, date });
        roundtrip_request(Request::DropHistory { prefix });
        roundtrip_request(Request::Scorecard { source: None });
        roundtrip_request(Request::Scorecard {
            source: Some("fig2".to_owned()),
        });
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Metrics);
    }

    #[test]
    fn kind_labels_match_kind_index() {
        let prefix: Ipv4Prefix = "198.51.100.0/24".parse().unwrap();
        let date: Date = "2020-06-15".parse().unwrap();
        let all = [
            Request::Ping,
            Request::Visibility { prefix, date },
            Request::Rov {
                prefix,
                origin: Asn(64500),
                date,
                all_tals: false,
            },
            Request::DropListed { prefix, date },
            Request::DropHistory { prefix },
            Request::Scorecard { source: None },
            Request::Stats,
            Request::Metrics,
        ];
        assert_eq!(all.len(), KIND_LABELS.len());
        for (i, req) in all.iter().enumerate() {
            assert_eq!(req.kind_index(), i, "{req:?}");
            assert_eq!(req.label(), KIND_LABELS[i], "{req:?}");
        }
    }

    #[test]
    fn reply_roundtrips() {
        let date: Date = "2020-06-15".parse().unwrap();
        roundtrip_reply(Reply::Pong);
        roundtrip_reply(Reply::Visibility {
            routed: true,
            observing: 12,
            total: 30,
            fraction: 0.4,
        });
        roundtrip_reply(Reply::Rov {
            outcome: 1,
            covering: vec!["ROA x".to_owned(), "ROA y".to_owned()],
        });
        roundtrip_reply(Reply::DropListed { listed: false });
        roundtrip_reply(Reply::DropHistory {
            episodes: vec![Episode {
                added: date,
                removed: None,
                sbl: Some("SBL123".to_owned()),
            }],
        });
        roundtrip_reply(Reply::Scorecard {
            text: "table\n".to_owned(),
        });
        roundtrip_reply(Reply::Stats {
            pairs: vec![("serve.queries".to_owned(), 7)],
        });
        roundtrip_reply(Reply::Metrics {
            json: "{\"schema\":\"droplens-metrics/1\"}".to_owned(),
        });
        roundtrip_reply(Reply::Busy);
        roundtrip_reply(Reply::Error {
            message: "malformed Visibility request at byte 4: x".to_owned(),
        });
    }

    #[test]
    fn clean_eof_is_none() {
        let mut empty: &[u8] = &[];
        assert!(Request::read_from(&mut empty).unwrap().is_none());
    }

    #[test]
    fn eof_mid_header_is_io() {
        let frame = Request::Ping.to_frame();
        let mut torn = &frame[..3];
        match Request::read_from(&mut torn) {
            Err(WireError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof);
            }
            other => panic!("expected torn-header Io error, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_is_located() {
        let mut frame = Request::Ping.to_frame();
        frame[0] = b'X';
        let mut cursor = &frame[..];
        match Request::read_from(&mut cursor) {
            Err(WireError::Frame(e)) => {
                assert_eq!(e.offset, 0);
                assert!(e.detail.contains("magic"), "{e}");
            }
            other => panic!("expected frame error, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut frame = Request::Ping.to_frame();
        frame[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor = &frame[..];
        match Request::read_from(&mut cursor) {
            Err(WireError::Frame(e)) => {
                assert_eq!(e.offset, 4);
                assert!(e.detail.contains("cap"), "{e}");
            }
            other => panic!("expected frame error, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let prefix: Ipv4Prefix = "198.51.100.0/24".parse().unwrap();
        let inner = Request::DropHistory { prefix }.to_frame();
        // Reseal with one junk byte appended so only the trailing check
        // can object (length and checksum both account for it).
        let mut payload = inner[HEADER_LEN..].to_vec();
        payload.push(0xaa);
        let frame = seal_frame(inner[3], &payload);
        let mut cursor = &frame[..];
        match Request::read_from(&mut cursor) {
            Err(WireError::Frame(e)) => assert!(e.detail.contains("trailing"), "{e}"),
            other => panic!("expected frame error, got {other:?}"),
        }
    }

    #[test]
    fn payload_corruption_fails_the_checksum() {
        let mut frame = Reply::Scorecard {
            text: "the measured table\n".to_owned(),
        }
        .to_frame();
        // Flip one bit deep inside the string payload — without the
        // checksum this would decode fine with silently altered text.
        let at = frame.len() - 3;
        frame[at] ^= 0x10;
        let mut cursor = &frame[..];
        match Reply::read_from(&mut cursor) {
            Err(WireError::Frame(e)) => {
                assert_eq!(e.offset, 8);
                assert!(e.detail.contains("checksum"), "{e}");
            }
            other => panic!("expected checksum error, got {other:?}"),
        }
    }

    #[test]
    fn reply_kind_is_not_a_request() {
        let frame = Reply::Busy.to_frame();
        let mut cursor = &frame[..];
        match Request::read_from(&mut cursor) {
            Err(WireError::Frame(e)) => assert!(e.detail.contains("request kind"), "{e}"),
            other => panic!("expected frame error, got {other:?}"),
        }
    }
}

//! Deadline-guarded sockets.
//!
//! [`DeadlineStream`] is the only way serve-path code touches a
//! `TcpStream`: the constructor installs both the read and the write
//! timeout before the socket is ever used, so no IO on these paths can
//! block forever. The `no-deadline-free-io` lint rule enforces the
//! discipline structurally — raw `TcpStream::connect` or timeout-less
//! read/write calls in serve/client/loadgen code are build failures.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A `TcpStream` whose read and write deadlines were configured at
/// construction. Implements [`Read`] and [`Write`] by delegation; a
/// stalled peer surfaces as `WouldBlock`/`TimedOut` instead of a hang.
#[derive(Debug)]
pub struct DeadlineStream {
    inner: TcpStream,
}

impl DeadlineStream {
    /// Wrap an accepted stream, installing `deadline` for both reads
    /// and writes. `deadline` must be nonzero (`set_read_timeout`
    /// rejects zero by contract).
    pub fn new(stream: TcpStream, deadline: Duration) -> std::io::Result<DeadlineStream> {
        stream.set_read_timeout(Some(deadline))?;
        stream.set_write_timeout(Some(deadline))?;
        Ok(DeadlineStream { inner: stream })
    }

    /// Connect with `deadline` as the connect timeout, then install it
    /// as the read/write deadline too.
    pub fn connect(addr: SocketAddr, deadline: Duration) -> std::io::Result<DeadlineStream> {
        let stream = TcpStream::connect_timeout(&addr, deadline)?;
        DeadlineStream::new(stream, deadline)
    }

    /// The peer's address.
    pub fn peer_addr(&self) -> std::io::Result<SocketAddr> {
        self.inner.peer_addr()
    }

    /// Disable Nagle's algorithm (request/reply traffic wants every
    /// frame out immediately).
    pub fn set_nodelay(&self, on: bool) -> std::io::Result<()> {
        self.inner.set_nodelay(on)
    }

    /// Shut down the write half, signalling EOF to the peer while
    /// still allowing reads to drain.
    pub fn shutdown_write(&self) -> std::io::Result<()> {
        self.inner.shutdown(std::net::Shutdown::Write)
    }
}

impl Read for DeadlineStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.inner.read(buf)
    }
}

impl Write for DeadlineStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.inner.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

//! The load generator: many concurrent retrying clients hammering a
//! server with a seeded query mix, checking every deterministic reply
//! byte-for-byte against a local oracle [`Engine`] over the same study.
//!
//! Each worker thread derives its own seed from [`LoadConfig::seed`]
//! and its index, so the whole run — query mix, retry jitter, and (when
//! the chaos proxy sits in between) the fault schedule — replays
//! exactly. Latencies go to the obs histogram `loadgen.latency_ns`,
//! measured around the *whole* retried query, which is what a caller
//! experiences under faults.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use droplens_obs::{Histogram, HistogramSummary, Stopwatch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::client::{Client, ClientConfig, RetryPolicy};
use crate::engine::Engine;
use crate::protocol::{Request, KIND_LABELS};

/// Shape of a load run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent client threads.
    pub connections: usize,
    /// Queries each thread runs to completion (retries not counted).
    pub queries_per_conn: usize,
    /// Master seed; thread seeds and the query mix derive from it.
    pub seed: u64,
    /// Per-attempt connect/read/write deadline.
    pub deadline: Duration,
    /// Retry budget per query (each thread's jitter seed derives from
    /// this policy's seed and the thread index).
    pub retry: RetryPolicy,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            connections: 8,
            queries_per_conn: 50,
            seed: 0xd201_4e5e,
            deadline: Duration::from_secs(2),
            retry: RetryPolicy::default(),
        }
    }
}

/// What a load run saw.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Queries attempted (sum over threads; retries not counted).
    pub sent: u64,
    /// Queries that got a good reply within the retry budget.
    pub ok: u64,
    /// Queries that exhausted the retry budget.
    pub failed: u64,
    /// Good replies that did **not** match the oracle byte-for-byte.
    pub mismatched: u64,
    /// Sampled failure/mismatch messages (first few, in order).
    pub samples: Vec<String>,
    /// End-to-end per-query latency (ns), including retries.
    pub latency: HistogramSummary,
    /// The same tallies broken down per query kind, in
    /// [`KIND_LABELS`] order (kinds the mix never sent report zeros).
    pub kinds: Vec<KindReport>,
    /// Wall clock of the whole run, nanoseconds.
    pub elapsed_ns: u64,
}

/// Load tallies for one query kind; what BENCH_serve envelopes and
/// `droplens slo check` target individually.
#[derive(Debug, Clone)]
pub struct KindReport {
    /// The kind label (one of [`KIND_LABELS`]).
    pub kind: &'static str,
    /// Queries of this kind attempted.
    pub sent: u64,
    /// Queries that got a good reply within the retry budget.
    pub ok: u64,
    /// Queries that exhausted the retry budget.
    pub failed: u64,
    /// End-to-end latency (ns) of this kind, including retries.
    pub latency: HistogramSummary,
}

impl LoadReport {
    /// Completed queries per second over the run's wall clock.
    pub fn qps(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.ok as f64 / (self.elapsed_ns as f64 / 1e9)
    }

    /// True when every query succeeded and matched the oracle.
    pub fn clean(&self) -> bool {
        self.failed == 0 && self.mismatched == 0
    }

    /// One-paragraph human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} queries: {} ok, {} failed, {} mismatched; {:.0} q/s; latency p50 {} µs, p99 {} µs",
            self.sent,
            self.ok,
            self.failed,
            self.mismatched,
            self.qps(),
            self.latency.p50 / 1_000,
            self.latency.p99 / 1_000,
        )
    }

    /// JSON artifact for CI upload and the bench harness.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\n  \"sent\": {},\n  \"ok\": {},\n  \"failed\": {},\n  \"mismatched\": {},\n  \"qps\": {:.1},\n  \"latency_ns\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}},\n  \"kinds\": [\n",
            self.sent,
            self.ok,
            self.failed,
            self.mismatched,
            self.qps(),
            self.latency.p50,
            self.latency.p90,
            self.latency.p99,
            self.latency.max,
        );
        for (i, k) in self.kinds.iter().enumerate() {
            let comma = if i + 1 == self.kinds.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"kind\": \"{}\", \"sent\": {}, \"ok\": {}, \"failed\": {}, \"latency_ns\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}}}{}\n",
                k.kind,
                k.sent,
                k.ok,
                k.failed,
                k.latency.p50,
                k.latency.p90,
                k.latency.p99,
                k.latency.max,
                comma,
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// How many failure messages the report samples.
const REPORT_SAMPLES_KEPT: usize = 8;

/// Run the load: `connections` threads, each driving
/// `queries_per_conn` seeded queries through a retrying [`Client`]
/// against `addr`, comparing deterministic replies with `oracle`.
pub fn run(addr: SocketAddr, oracle: &Arc<Engine>, config: &LoadConfig) -> LoadReport {
    let histogram = droplens_obs::global().histogram("loadgen.latency_ns");
    // Per-kind latency is run-local (not the global registry): each
    // run's report covers exactly that run's samples.
    let kind_hists: Arc<Vec<Histogram>> =
        Arc::new(KIND_LABELS.iter().map(|_| Histogram::new()).collect());
    let run_sw = Stopwatch::start();
    let mut handles = Vec::with_capacity(config.connections.max(1));
    for thread_idx in 0..config.connections.max(1) {
        let oracle = Arc::clone(oracle);
        let config = config.clone();
        let histogram = histogram.clone();
        let kind_hists = Arc::clone(&kind_hists);
        handles.push(std::thread::spawn(move || {
            drive_thread(
                addr,
                &oracle,
                &config,
                thread_idx as u64,
                &histogram,
                &kind_hists,
            )
        }));
    }
    let mut report = LoadReport {
        sent: 0,
        ok: 0,
        failed: 0,
        mismatched: 0,
        samples: Vec::new(),
        latency: HistogramSummary::default(),
        kinds: Vec::new(),
        elapsed_ns: 0,
    };
    let mut kind_tallies = [[0u64; 3]; KIND_LABELS.len()];
    for handle in handles {
        let Ok(part) = handle.join() else {
            report.failed += 1;
            report.samples.push("load thread panicked".to_owned());
            continue;
        };
        report.sent += part.sent;
        report.ok += part.ok;
        report.failed += part.failed;
        report.mismatched += part.mismatched;
        for (total, thread) in kind_tallies.iter_mut().zip(part.kinds) {
            for (t, v) in total.iter_mut().zip(thread) {
                *t += v;
            }
        }
        for s in part.samples {
            if report.samples.len() < REPORT_SAMPLES_KEPT {
                report.samples.push(s);
            }
        }
    }
    report.elapsed_ns = run_sw.elapsed_ns();
    report.latency = histogram.summary();
    report.kinds = KIND_LABELS
        .iter()
        .zip(kind_tallies)
        .zip(kind_hists.iter())
        .map(|((kind, [sent, ok, failed]), hist)| KindReport {
            kind,
            sent,
            ok,
            failed,
            latency: hist.summary(),
        })
        .collect(); // lint: allow(no-unbounded-collect) — one entry per kind
    report
}

/// Per-thread tallies, merged by [`run`]. `kinds` rows are
/// `[sent, ok, failed]` per [`KIND_LABELS`] entry.
struct ThreadPart {
    sent: u64,
    ok: u64,
    failed: u64,
    mismatched: u64,
    kinds: [[u64; 3]; KIND_LABELS.len()],
    samples: Vec<String>,
}

fn drive_thread(
    addr: SocketAddr,
    oracle: &Arc<Engine>,
    config: &LoadConfig,
    thread_idx: u64,
    histogram: &droplens_obs::Histogram,
    kind_hists: &[Histogram],
) -> ThreadPart {
    // Golden-ratio stride keeps derived seeds well apart.
    let derived = config
        .seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(thread_idx + 1));
    let mut mix = StdRng::seed_from_u64(derived);
    let mut client = Client::new(ClientConfig {
        addr,
        deadline: config.deadline,
        retry: RetryPolicy {
            seed: derived ^ 0x00c1_1e47,
            ..config.retry.clone()
        },
    });
    let mut part = ThreadPart {
        sent: 0,
        ok: 0,
        failed: 0,
        mismatched: 0,
        kinds: [[0; 3]; KIND_LABELS.len()],
        samples: Vec::new(),
    };
    for _ in 0..config.queries_per_conn {
        let req = random_request(&mut mix, oracle);
        let kind = req.kind_index();
        part.sent += 1;
        part.kinds[kind][0] += 1;
        let sw = Stopwatch::start();
        match client.query(&req) {
            Ok(reply) => {
                let elapsed = sw.elapsed_ns();
                histogram.record(elapsed);
                kind_hists[kind].record(elapsed);
                part.ok += 1;
                part.kinds[kind][1] += 1;
                // Stats and Metrics replies mix in live state; every
                // other kind must equal the offline answer exactly.
                if !matches!(req, Request::Stats | Request::Metrics) && reply != oracle.answer(&req)
                {
                    part.mismatched += 1;
                    if part.samples.len() < REPORT_SAMPLES_KEPT {
                        part.samples
                            .push(format!("oracle mismatch on {} query", req.label()));
                    }
                }
            }
            Err(e) => {
                part.failed += 1;
                part.kinds[kind][2] += 1;
                if part.samples.len() < REPORT_SAMPLES_KEPT {
                    part.samples.push(e.to_string());
                }
            }
        }
    }
    part
}

/// A seeded query over the study's own prefixes and window — realistic
/// enough to exercise every index, deterministic for a given rng state.
fn random_request(rng: &mut StdRng, oracle: &Engine) -> Request {
    let study = oracle.study();
    let entries = &study.entries;
    if entries.is_empty() {
        // Degenerate world: nothing to ask about beyond liveness.
        return Request::Ping;
    }
    let prefix = entries[rng.gen_range(0..entries.len())].prefix();
    let window = study.config.window;
    let date = window.start() + rng.gen_range(0..window.len().max(1)) as i32;
    match rng.gen_range(0..12u32) {
        0 => Request::Ping,
        1..=3 => Request::Visibility { prefix, date },
        4..=6 => Request::Rov {
            prefix,
            origin: droplens_net::Asn(rng.gen_range(1..65_000)),
            date,
            all_tals: rng.gen_range(0..4u8) == 0,
        },
        7..=8 => Request::DropListed { prefix, date },
        9..=10 => Request::DropHistory { prefix },
        _ => {
            if rng.gen_range(0..4u8) == 0 {
                Request::Stats
            } else {
                Request::Scorecard {
                    source: if rng.gen_range(0..2u8) == 0 {
                        None
                    } else {
                        Some("Table".to_owned())
                    },
                }
            }
        }
    }
}

//! The bundled client: connect-per-query with deadline-guarded sockets
//! and jittered exponential-backoff retries under an explicit budget.
//!
//! Every failure mode the chaos layer can produce — connect refusal,
//! read/write timeout, mid-reply reset (a torn read), a corrupted frame
//! (located decode error), a typed [`Reply::Busy`] shed, or a server
//! [`Reply::Error`] caused by the *request* corrupting in transit — is
//! retryable: the query is re-sent on a fresh connection after a
//! backoff. The backoff doubles from [`RetryPolicy::base_delay`] up to
//! [`RetryPolicy::max_delay`] and each sleep is jittered uniformly into
//! the upper half of the window by a [`StdRng`] seeded from
//! [`RetryPolicy::seed`] — deterministic for a given seed, like every
//! other randomized component in the workspace. When the attempt budget
//! is spent the client gives up with [`ClientError::Exhausted`] naming
//! the last failure; it never retries forever and never hangs.

use std::fmt;
use std::net::SocketAddr;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::net::DeadlineStream;
use crate::protocol::{Reply, Request, WireError};

/// The retry budget and backoff shape.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Hard cap on attempts per query (first try included).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub base_delay: Duration,
    /// Ceiling on any single backoff.
    pub max_delay: Duration,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(320),
            seed: 0x0d10_9e45,
        }
    }
}

impl RetryPolicy {
    /// The jittered backoff before attempt `attempt + 1` (0-based):
    /// uniform in the upper half of `min(base << attempt, max)`.
    fn backoff(&self, attempt: u32, rng: &mut StdRng) -> Duration {
        let full = self
            .base_delay
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_delay);
        let ns = full.as_nanos() as u64;
        if ns == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(ns / 2 + rng.gen_range(0..=ns / 2))
    }
}

/// Where and how to talk to a server.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// The server address.
    pub addr: SocketAddr,
    /// Connect/read/write deadline per attempt.
    pub deadline: Duration,
    /// The retry budget.
    pub retry: RetryPolicy,
}

impl ClientConfig {
    /// Defaults (2 s deadline, default retry budget) against `addr`.
    pub fn to_addr(addr: SocketAddr) -> ClientConfig {
        ClientConfig {
            addr,
            deadline: Duration::from_secs(2),
            retry: RetryPolicy::default(),
        }
    }
}

/// The retry budget was spent without a good reply.
#[derive(Debug)]
pub enum ClientError {
    /// Every attempt failed; carries the count and the last failure.
    Exhausted {
        /// Attempts made (== the policy's budget).
        attempts: u32,
        /// The last attempt's failure, rendered.
        last: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Exhausted { attempts, last } => {
                write!(
                    f,
                    "retry budget exhausted after {attempts} attempts: {last}"
                )
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// One failed attempt, classified for the retry decision (all classes
/// retry; the class names the ledger entry).
enum Attempt {
    Good(Reply),
    Retry(String),
}

/// A retrying client. Holds only configuration and the jitter stream;
/// every query opens a fresh connection, so a `Client` is cheap and a
/// poisoned connection cannot leak across queries.
pub struct Client {
    config: ClientConfig,
    rng: StdRng,
    retries: droplens_obs::Counter,
}

impl Client {
    /// A client for `config`.
    pub fn new(config: ClientConfig) -> Client {
        let rng = StdRng::seed_from_u64(config.retry.seed);
        Client {
            config,
            rng,
            retries: droplens_obs::global().counter("client.retries"),
        }
    }

    /// Run one query to completion: try, classify, back off, retry —
    /// until a good reply or the budget is spent.
    pub fn query(&mut self, req: &Request) -> Result<Reply, ClientError> {
        let budget = self.config.retry.max_attempts.max(1);
        let mut last = String::new();
        for attempt in 0..budget {
            if attempt > 0 {
                self.retries.inc();
                let pause = self.config.retry.backoff(attempt - 1, &mut self.rng);
                std::thread::sleep(pause);
            }
            match self.attempt(req) {
                Attempt::Good(reply) => return Ok(reply),
                Attempt::Retry(why) => last = why,
            }
        }
        Err(ClientError::Exhausted {
            attempts: budget,
            last,
        })
    }

    /// One connection, one request, one reply.
    fn attempt(&mut self, req: &Request) -> Attempt {
        let mut conn = match DeadlineStream::connect(self.config.addr, self.config.deadline) {
            Ok(conn) => conn,
            Err(e) => return Attempt::Retry(format!("connect: {e}")),
        };
        let _ = conn.set_nodelay(true);
        if let Err(e) = req.write_to(&mut conn) {
            return Attempt::Retry(format!("send: {e}"));
        }
        match Reply::read_from(&mut conn) {
            Ok(Some(Reply::Busy)) => Attempt::Retry("server busy".to_owned()),
            Ok(Some(Reply::Error { message })) => {
                // The server could not decode what arrived — with a
                // well-formed request that means corruption in transit;
                // a fresh attempt sends clean bytes.
                Attempt::Retry(format!("server error: {message}"))
            }
            Ok(Some(reply)) => Attempt::Good(reply),
            Ok(None) => Attempt::Retry("connection closed before reply".to_owned()),
            Err(WireError::Io(e)) => Attempt::Retry(format!("transport: {e}")),
            Err(WireError::Frame(e)) => Attempt::Retry(format!("corrupt reply: {e}")),
        }
    }
}

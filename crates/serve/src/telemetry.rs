//! The live telemetry plane: windowed per-kind series, request-path
//! phase timings, live gauges, and the slow-query ledger.
//!
//! Where [`crate::server::ServeReport`] is a post-mortem — written once
//! after the process exits — this module is what a *running* server
//! answers [`Request::Metrics`](crate::Request::Metrics) with: current
//! q/s and tail latency per query kind over the last few seconds
//! ([`droplens_obs::window`]), how deep the accept queue is right now,
//! how many connections were shed lately, and verbatim samples of the
//! slowest requests with their per-phase timing breakdown
//! (queue wait → decode → engine → write).
//!
//! Every time read goes through one [`Clock`], injected at
//! construction: under [`Clock::mock`] the whole plane — window expiry,
//! rates, slow-query detection — is deterministic in tests. The
//! `no-wallclock` lint rule keeps raw `Instant::now` out of this path.
//!
//! The snapshot is one stable JSON document (schema
//! `droplens-metrics/1`, insertion-ordered keys via
//! [`droplens_obs::json`]) so `droplens top`, `droplens slo check`, and
//! CI artifacts all consume the same bytes.

use std::collections::VecDeque;
use std::sync::Mutex;

use droplens_obs::json::JsonObject;
use droplens_obs::{
    Clock, Counter, Gauge, HistogramSummary, WindowConfig, WindowedCounter, WindowedHistogram,
};

use crate::protocol::{Request, KIND_LABELS};

/// How many slow-query samples the ledger retains (most recent first
/// out, oldest evicted).
pub const SLOW_SAMPLES_KEPT: usize = 32;

/// Request-path phases, in pipeline order. `queue_wait` is accept → a
/// worker picking the connection up; the rest bracket one request.
pub const PHASE_LABELS: [&str; 4] = ["queue_wait", "decode", "engine", "write"];

/// Schema tag of the snapshot document.
pub const METRICS_SCHEMA: &str = "droplens-metrics/1";

/// Windowed series for one query kind.
struct KindSeries {
    /// Lifetime requests of this kind (what `droplens top` diffs
    /// between snapshots to show per-interval deltas).
    total: Counter,
    /// Requests inside the window.
    queries: WindowedCounter,
    /// Failed requests (write errors) inside the window.
    errors: WindowedCounter,
    /// Service latency (decode + engine + write) inside the window.
    latency: WindowedHistogram,
}

/// Nanosecond timing breakdown of one served request.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequestTiming {
    /// Frame read + decode.
    pub decode_ns: u64,
    /// Engine answer (plus stats/metrics fill-in).
    pub engine_ns: u64,
    /// Reply serialization + the single `write_all`.
    pub write_ns: u64,
}

impl RequestTiming {
    /// Whole-request service time.
    pub fn total_ns(&self) -> u64 {
        self.decode_ns
            .saturating_add(self.engine_ns)
            .saturating_add(self.write_ns)
    }
}

/// One retained slow-request sample.
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// The query kind label.
    pub kind: &'static str,
    /// Canonical rendering of the request's arguments.
    pub args: String,
    /// The timing breakdown that crossed the threshold.
    pub timing: RequestTiming,
}

#[derive(Default)]
struct SlowLedger {
    /// Requests that ever crossed the threshold (not capped).
    seen: u64,
    /// The most recent [`SLOW_SAMPLES_KEPT`] of them.
    samples: VecDeque<SlowQuery>,
}

/// Lifetime counter values the server merges into each snapshot (the
/// same counters `stats` exposes; the telemetry plane itself only owns
/// windowed state and gauges).
#[derive(Debug, Clone, Copy, Default)]
pub struct LifetimeTotals {
    /// Connections accepted and handed to workers.
    pub connections: u64,
    /// Requests answered.
    pub queries: u64,
    /// Connections shed with a typed `Busy`.
    pub busy: u64,
    /// Connections killed by malformed frames.
    pub malformed: u64,
    /// Connections killed by transport errors.
    pub io_errors: u64,
}

/// The server's live telemetry state. One per server; cheap handles are
/// not needed because the server shares it behind its existing `Arc`.
pub struct Telemetry {
    clock: Clock,
    window: WindowConfig,
    /// Connections waiting in the accept queue right now.
    queue_depth: Gauge,
    /// Connections being served by a worker right now.
    in_flight: Gauge,
    /// Windowed global series.
    queries: WindowedCounter,
    shed: WindowedCounter,
    malformed: WindowedCounter,
    io_errors: WindowedCounter,
    /// Per-kind series, indexed by [`Request::kind_index`].
    kinds: Vec<KindSeries>,
    /// Per-phase latency, indexed like [`PHASE_LABELS`].
    phases: Vec<WindowedHistogram>,
    slow_threshold_ns: u64,
    slow: Mutex<SlowLedger>,
}

impl Telemetry {
    /// Build the plane over `clock` with the given window geometry and
    /// slow-query threshold.
    pub fn new(clock: Clock, window: WindowConfig, slow_threshold_ns: u64) -> Telemetry {
        let kinds = KIND_LABELS
            .iter()
            .map(|_| KindSeries {
                total: Counter::new(),
                queries: WindowedCounter::new(clock.clone(), window),
                errors: WindowedCounter::new(clock.clone(), window),
                latency: WindowedHistogram::new(clock.clone(), window),
            })
            .collect();
        let phases = PHASE_LABELS
            .iter()
            .map(|_| WindowedHistogram::new(clock.clone(), window))
            .collect();
        Telemetry {
            queue_depth: Gauge::new(),
            in_flight: Gauge::new(),
            queries: WindowedCounter::new(clock.clone(), window),
            shed: WindowedCounter::new(clock.clone(), window),
            malformed: WindowedCounter::new(clock.clone(), window),
            io_errors: WindowedCounter::new(clock.clone(), window),
            kinds,
            phases,
            slow_threshold_ns,
            slow: Mutex::new(SlowLedger::default()),
            clock,
            window,
        }
    }

    /// The clock every timing in this plane reads.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// A connection is about to enter the accept queue. Call *before*
    /// the send: a worker can pull the connection (and charge
    /// [`Telemetry::dequeued`]) the instant it lands, so counting after
    /// the send lets a snapshot observe the dequeue first and read a
    /// negative depth. Revert with [`Telemetry::enqueue_reverted`] if
    /// the send fails.
    pub fn enqueued(&self) {
        self.queue_depth.add(1);
    }

    /// The send that [`Telemetry::enqueued`] announced did not happen
    /// (queue full or closed): take the depth increment back.
    pub fn enqueue_reverted(&self) {
        self.queue_depth.add(-1);
    }

    /// A worker pulled a connection that waited `wait_ns` in the queue.
    pub fn dequeued(&self, wait_ns: u64) {
        self.queue_depth.add(-1);
        self.phases[0].record(wait_ns); // lint: allow(no-panic-in-request-path) — constant index into [_; 4]
    }

    /// A worker started serving a connection.
    pub fn conn_started(&self) {
        self.in_flight.add(1);
    }

    /// A worker finished a connection.
    pub fn conn_finished(&self) {
        self.in_flight.add(-1);
    }

    /// A connection was shed with `Busy`.
    pub fn shed(&self) {
        self.shed.inc();
    }

    /// A connection died on a malformed frame.
    pub fn malformed(&self) {
        self.malformed.inc();
    }

    /// A connection died on a transport error. (Per-kind error series
    /// are bumped by [`Telemetry::request_served`] with `ok=false`.)
    pub fn io_error(&self) {
        self.io_errors.inc();
    }

    /// One request was served (or its write failed — pass `ok=false`).
    /// `args` is rendered lazily: only slow requests pay for it.
    pub fn request_served(
        &self,
        req: &Request,
        ok: bool,
        timing: RequestTiming,
        args: impl FnOnce() -> String,
    ) {
        let i = req.kind_index();
        let series = &self.kinds[i]; // lint: allow(no-panic-in-request-path) — kind_index() < kinds.len() by construction
        series.total.inc();
        series.queries.inc();
        series.latency.record(timing.total_ns());
        self.queries.inc();
        self.phases[1].record(timing.decode_ns); // lint: allow(no-panic-in-request-path) — constant index into [_; 4]
        self.phases[2].record(timing.engine_ns); // lint: allow(no-panic-in-request-path) — constant index into [_; 4]
        self.phases[3].record(timing.write_ns); // lint: allow(no-panic-in-request-path) — constant index into [_; 4]
        if !ok {
            series.errors.inc();
        }
        if timing.total_ns() >= self.slow_threshold_ns {
            let sample = SlowQuery {
                kind: req.label(),
                args: args(),
                timing,
            };
            let mut ledger = match self.slow.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            ledger.seen += 1;
            if ledger.samples.len() == SLOW_SAMPLES_KEPT {
                ledger.samples.pop_front();
            }
            ledger.samples.push_back(sample);
        }
    }

    /// Render the full snapshot as one stable `droplens-metrics/1` JSON
    /// document.
    pub fn snapshot_json(
        &self,
        totals: LifetimeTotals,
        queue_capacity: usize,
        workers: usize,
    ) -> String {
        let mut doc = JsonObject::new();
        doc.field_str("schema", METRICS_SCHEMA)
            .field_u64("uptime_ns", self.clock.now_ns())
            .field_u64("window_ns", self.window.window_ns())
            .field_u64("workers", workers as u64)
            .field_u64("queue_capacity", queue_capacity as u64)
            .field_i64("queue_depth", self.queue_depth.value())
            .field_i64("in_flight", self.in_flight.value());

        let mut window = JsonObject::new();
        window
            .field_u64("queries", self.queries.total())
            .field_f64("qps", self.queries.rate_per_sec())
            .field_u64("shed", self.shed.total())
            .field_u64("malformed", self.malformed.total())
            .field_u64("io_errors", self.io_errors.total());
        doc.field_object("window", window);

        let mut lifetime = JsonObject::new();
        lifetime
            .field_u64("connections", totals.connections)
            .field_u64("queries", totals.queries)
            .field_u64("busy", totals.busy)
            .field_u64("malformed", totals.malformed)
            .field_u64("io_errors", totals.io_errors);
        doc.field_object("totals", lifetime);

        let kinds = KIND_LABELS
            .iter()
            .zip(&self.kinds)
            .map(|(label, series)| {
                let mut k = JsonObject::new();
                k.field_str("kind", label)
                    .field_u64("total", series.total.value())
                    .field_u64("window_queries", series.queries.total())
                    .field_f64("qps", series.queries.rate_per_sec())
                    .field_u64("window_errors", series.errors.total())
                    .field_object("latency_ns", summary_json(series.latency.summary()));
                k
            })
            .collect();
        doc.field_object_array("kinds", kinds);

        let phases = PHASE_LABELS
            .iter()
            .zip(&self.phases)
            .map(|(label, hist)| {
                let mut p = JsonObject::new();
                p.field_str("phase", label)
                    .field_object("latency_ns", summary_json(hist.summary()));
                p
            })
            .collect();
        doc.field_object_array("phases", phases);

        let (seen, samples) = {
            let ledger = match self.slow.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            (
                ledger.seen,
                ledger.samples.iter().cloned().collect::<Vec<_>>(),
            )
        };
        let mut slow = JsonObject::new();
        slow.field_u64("threshold_ns", self.slow_threshold_ns)
            .field_u64("seen", seen);
        let samples = samples
            .iter()
            .map(|s| {
                let mut o = JsonObject::new();
                o.field_str("kind", s.kind)
                    .field_str("args", &s.args)
                    .field_u64("total_ns", s.timing.total_ns())
                    .field_u64("decode_ns", s.timing.decode_ns)
                    .field_u64("engine_ns", s.timing.engine_ns)
                    .field_u64("write_ns", s.timing.write_ns);
                o
            })
            .collect();
        slow.field_object_array("samples", samples);
        doc.field_object("slow", slow);

        doc.finish()
    }
}

/// A histogram summary as the nested object every latency field uses.
fn summary_json(s: HistogramSummary) -> JsonObject {
    let mut o = JsonObject::new();
    o.field_u64("count", s.count)
        .field_u64("min", s.min)
        .field_u64("max", s.max)
        .field_u64("p50", s.p50)
        .field_u64("p90", s.p90)
        .field_u64("p99", s.p99);
    o
}

/// Canonical rendering of a request's arguments for the slow ledger
/// (the kind travels separately).
pub fn request_args(req: &Request) -> String {
    match req {
        Request::Ping | Request::Stats | Request::Metrics => String::new(),
        Request::Visibility { prefix, date } | Request::DropListed { prefix, date } => {
            format!("{prefix} {date}")
        }
        Request::Rov {
            prefix,
            origin,
            date,
            all_tals,
        } => format!(
            "{prefix} AS{} {date}{}",
            origin.value(),
            if *all_tals { " all-tals" } else { "" }
        ),
        Request::DropHistory { prefix } => prefix.to_string(),
        Request::Scorecard { source } => source.clone().unwrap_or_default(),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code: panics are failures
mod tests {
    use super::*;
    use droplens_obs::json::parse;
    use std::time::Duration;

    fn plane() -> (Clock, Telemetry) {
        let clock = Clock::mock();
        // 4 × 1 ms window, 1 ms slow threshold: easy to step through.
        let t = Telemetry::new(
            clock.clone(),
            WindowConfig {
                slots: 4,
                slot_ns: 1_000_000,
            },
            1_000_000,
        );
        (clock, t)
    }

    fn timing(ns: u64) -> RequestTiming {
        RequestTiming {
            decode_ns: ns / 4,
            engine_ns: ns / 2,
            write_ns: ns - ns / 4 - ns / 2,
        }
    }

    #[test]
    fn snapshot_reflects_recorded_requests() {
        let (_clock, t) = plane();
        t.enqueued();
        t.dequeued(500);
        t.conn_started();
        for _ in 0..5 {
            t.request_served(&Request::Ping, true, timing(1_000), String::new);
        }
        t.request_served(&Request::Stats, false, timing(2_000), String::new);

        let doc = parse(&t.snapshot_json(LifetimeTotals::default(), 64, 4)).expect("valid json");
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(METRICS_SCHEMA));
        assert_eq!(doc.get("queue_depth").unwrap().as_i64(), Some(0));
        assert_eq!(doc.get("in_flight").unwrap().as_i64(), Some(1));
        let window = doc.get("window").unwrap();
        assert_eq!(window.get("queries").unwrap().as_u64(), Some(6));

        let kinds = doc.get("kinds").unwrap().items();
        assert_eq!(kinds.len(), KIND_LABELS.len());
        let ping = &kinds[0];
        assert_eq!(ping.get("kind").unwrap().as_str(), Some("ping"));
        assert_eq!(ping.get("window_queries").unwrap().as_u64(), Some(5));
        assert_eq!(
            ping.get("latency_ns").unwrap().get("p99").unwrap().as_u64(),
            Some(1_000)
        );
        let stats = &kinds[6];
        assert_eq!(stats.get("window_errors").unwrap().as_u64(), Some(1));

        let phases = doc.get("phases").unwrap().items();
        assert_eq!(phases.len(), PHASE_LABELS.len());
        assert_eq!(phases[0].get("phase").unwrap().as_str(), Some("queue_wait"));
        assert_eq!(
            phases[0]
                .get("latency_ns")
                .unwrap()
                .get("count")
                .unwrap()
                .as_u64(),
            Some(1)
        );
    }

    #[test]
    fn window_slides_past_old_requests() {
        let (clock, t) = plane();
        for _ in 0..10 {
            t.request_served(&Request::Ping, true, timing(100), String::new);
        }
        let doc = parse(&t.snapshot_json(LifetimeTotals::default(), 64, 4)).unwrap();
        assert_eq!(
            doc.get("window").unwrap().get("queries").unwrap().as_u64(),
            Some(10)
        );

        clock.advance(Duration::from_millis(10)); // far past the 4 ms window
        let doc = parse(&t.snapshot_json(LifetimeTotals::default(), 64, 4)).unwrap();
        assert_eq!(
            doc.get("window").unwrap().get("queries").unwrap().as_u64(),
            Some(0)
        );
        // Lifetime per-kind totals survive the slide.
        let ping = &doc.get("kinds").unwrap().items()[0];
        assert_eq!(ping.get("total").unwrap().as_u64(), Some(10));
        assert_eq!(ping.get("window_queries").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn slow_queries_land_in_the_ledger_with_args() {
        let (_clock, t) = plane();
        // Below threshold: not sampled, and args are never rendered.
        t.request_served(&Request::Ping, true, timing(999_999), || {
            panic!("args rendered for a fast request")
        });
        let req = Request::DropHistory {
            prefix: "198.51.100.0/24".parse().unwrap(),
        };
        for _ in 0..SLOW_SAMPLES_KEPT + 5 {
            t.request_served(&req, true, timing(5_000_000), || request_args(&req));
        }
        let doc = parse(&t.snapshot_json(LifetimeTotals::default(), 64, 4)).unwrap();
        let slow = doc.get("slow").unwrap();
        assert_eq!(
            slow.get("seen").unwrap().as_u64(),
            Some(SLOW_SAMPLES_KEPT as u64 + 5)
        );
        let samples = slow.get("samples").unwrap().items();
        assert_eq!(samples.len(), SLOW_SAMPLES_KEPT, "ledger is bounded");
        let s = &samples[0];
        assert_eq!(s.get("kind").unwrap().as_str(), Some("drop_history"));
        assert_eq!(s.get("args").unwrap().as_str(), Some("198.51.100.0/24"));
        assert_eq!(s.get("total_ns").unwrap().as_u64(), Some(5_000_000));
    }

    #[test]
    fn request_args_are_canonical() {
        assert_eq!(request_args(&Request::Ping), "");
        assert_eq!(
            request_args(&Request::Rov {
                prefix: "203.0.113.0/24".parse().unwrap(),
                origin: droplens_net::Asn(64500),
                date: "2020-06-15".parse().unwrap(),
                all_tals: true,
            }),
            "203.0.113.0/24 AS64500 2020-06-15 all-tals"
        );
        assert_eq!(
            request_args(&Request::Scorecard {
                source: Some("fig2".to_owned())
            }),
            "fig2"
        );
    }
}

//! Property-based tests: snapshot diffing must reconstruct exactly the
//! listing schedule that produced the snapshots, and the text format must
//! round-trip arbitrary snapshots.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code: panics are failures
use std::collections::BTreeMap;

use droplens_drop::{DropSnapshot, DropTimeline, SblId};
use droplens_net::{Date, Ipv4Prefix};
use proptest::prelude::*;

const EPOCH: i32 = 18_000;

fn prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (0u32..12, 18u8..24).prop_map(|(i, len)| Ipv4Prefix::from_u32(0x0a00_0000 | (i << 20), len))
}

/// A listing schedule: per prefix, an add offset and an optional removal
/// offset strictly after it.
fn schedule() -> impl Strategy<Value = Vec<(Ipv4Prefix, i32, Option<i32>)>> {
    prop::collection::btree_map(prefix(), (0i32..40, prop::option::of(1i32..40)), 0..10).prop_map(
        |m| {
            m.into_iter()
                .map(|(p, (add, rm))| (p, add, rm.map(|r| add + r)))
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn timeline_reconstructs_schedule(schedule in schedule()) {
        // Build daily snapshots over a window covering everything.
        let start = Date::from_days_since_epoch(EPOCH);
        let days = 90;
        let snapshots: Vec<DropSnapshot> = (0..days)
            .map(|off| {
                let day = start + off;
                let mut snap = DropSnapshot::new(day);
                for (i, &(p, add, rm)) in schedule.iter().enumerate() {
                    let added = start + add;
                    let removed = rm.map(|r| start + r);
                    if day >= added && removed.is_none_or(|r| day < r) {
                        snap.insert(p, Some(SblId(1000 + i as u32)));
                    }
                }
                snap
            })
            .collect();

        let timeline = DropTimeline::from_snapshots(&snapshots);
        let episodes: BTreeMap<Ipv4Prefix, _> = timeline
            .entries()
            .iter()
            .map(|e| (e.prefix, (e.added, e.removed)))
            .collect();

        prop_assert_eq!(episodes.len(), schedule.len());
        for &(p, add, rm) in &schedule {
            let (added, removed) = episodes[&p];
            prop_assert_eq!(added, start + add, "{}", p);
            prop_assert_eq!(removed, rm.map(|r| start + r), "{}", p);
        }

        // listed_on agrees with the schedule on every day.
        for off in 0..days {
            let day = start + off;
            for &(p, add, rm) in &schedule {
                let expected = day >= start + add && rm.is_none_or(|r| day < start + r);
                prop_assert_eq!(timeline.listed_on(&p, day), expected, "{} on {}", p, day);
            }
        }
    }

    #[test]
    fn snapshot_text_round_trips(entries in prop::collection::btree_map(prefix(), prop::option::of(1u32..1_000_000), 0..20),
                                 off in 0i32..2000) {
        let date = Date::from_days_since_epoch(EPOCH + off);
        let mut snap = DropSnapshot::new(date);
        for (p, sbl) in entries {
            snap.insert(p, sbl.map(SblId));
        }
        let text = snap.to_text();
        prop_assert_eq!(DropSnapshot::parse(date, &text).expect("own output parses"), snap);
    }

    #[test]
    fn relisting_produces_separate_episodes(gap in 1i32..20, second_len in 1i32..20) {
        let start = Date::from_days_since_epoch(EPOCH);
        let p: Ipv4Prefix = "10.0.0.0/20".parse().expect("prefix");
        // Listed days 0..5, relisted after `gap`, for `second_len` days.
        let first_end = 5;
        let second_start = first_end + gap;
        let second_end = second_start + second_len;
        let snapshots: Vec<DropSnapshot> = (0..second_end + 5)
            .map(|off| {
                let day = start + off;
                let mut snap = DropSnapshot::new(day);
                if (0..first_end).contains(&off) || (second_start..second_end).contains(&off) {
                    snap.insert(p, Some(SblId(1)));
                }
                snap
            })
            .collect();
        let timeline = DropTimeline::from_snapshots(&snapshots);
        let eps = timeline.for_prefix(&p);
        prop_assert_eq!(eps.len(), 2);
        prop_assert_eq!(eps[0].added, start);
        prop_assert_eq!(eps[0].removed, Some(start + first_end));
        prop_assert_eq!(eps[1].added, start + second_start);
        prop_assert_eq!(eps[1].removed, Some(start + second_end));
        prop_assert_eq!(timeline.unique_prefixes(), vec![p]);
    }
}

//! Spamhaus DROP / SBL substrate.
//!
//! The study's primary input is the Don't Route Or Peer list: daily
//! snapshots of `prefix ; SBLnnnnn` lines (archived by FireHOL), plus the
//! freeform SBL records documenting why each prefix was listed. This
//! crate models both, and implements the paper's Appendix-A
//! semi-automated categorization.
//!
//! * [`Category`] — the six analysis categories (HJ, SS, KS, MH, UA, NR).
//! * [`SblRecord`] / [`SblDatabase`] — record bodies keyed by SBL id, with
//!   the keyword classifier ([`classify`]) and malicious-ASN extraction.
//! * [`list`] — the DROP file format and [`DropTimeline`], which diffs a
//!   series of daily snapshots into dated add/remove entries.

#![warn(missing_docs)]

mod category;
pub mod format;
pub mod list;
mod sbl;

pub use category::Category;
pub use list::{repair_flickers, DropEntry, DropSnapshot, DropTimeline};
pub use sbl::{classify, extract_asns, Classification, SblDatabase, SblId, SblRecord};

//! DROP entry categories (paper §3.1).

use std::fmt;
use std::str::FromStr;

use droplens_net::ParseError;

/// The six categories the paper assigns to DROP prefixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// Hijacked (HJ): obtained through fraud from an RIR, or announced
    /// despite being assigned to another network.
    Hijacked,
    /// Snowshoe spam (SS): spam spread thinly across many addresses.
    SnowshoeSpam,
    /// Known spam operation (KS): controlled by / connected to a ROKSO
    /// spam operation.
    KnownSpamOperation,
    /// Malicious hosting (MH): bulletproof hosting services.
    MaliciousHosting,
    /// Unallocated (UA): not allocated by IANA or any RIR, yet in use.
    Unallocated,
    /// No SBL record (NR): the record was removed after remediation.
    NoSblRecord,
}

impl Category {
    /// All categories in the paper's Figure 1 order.
    pub const ALL: [Category; 6] = [
        Category::Hijacked,
        Category::SnowshoeSpam,
        Category::KnownSpamOperation,
        Category::MaliciousHosting,
        Category::Unallocated,
        Category::NoSblRecord,
    ];

    /// The two-letter code used in the figures.
    pub fn code(self) -> &'static str {
        match self {
            Category::Hijacked => "HJ",
            Category::SnowshoeSpam => "SS",
            Category::KnownSpamOperation => "KS",
            Category::MaliciousHosting => "MH",
            Category::Unallocated => "UA",
            Category::NoSblRecord => "NR",
        }
    }

    /// Full name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Category::Hijacked => "Hijacks",
            Category::SnowshoeSpam => "Snowshoe",
            Category::KnownSpamOperation => "Known Spam Op.",
            Category::MaliciousHosting => "Malicious Hosting",
            Category::Unallocated => "Unallocated",
            Category::NoSblRecord => "No SBL Record",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

impl FromStr for Category {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Category::ALL
            .into_iter()
            .find(|c| c.code() == s)
            .ok_or_else(|| ParseError::new("Category", s, "unknown category code"))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code: panics are failures
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for c in Category::ALL {
            assert_eq!(c.code().parse::<Category>().unwrap(), c);
        }
        assert!("XX".parse::<Category>().is_err());
    }

    #[test]
    fn figure_order() {
        let codes: Vec<&str> = Category::ALL.iter().map(|c| c.code()).collect();
        assert_eq!(codes, ["HJ", "SS", "KS", "MH", "UA", "NR"]);
    }

    #[test]
    fn names() {
        assert_eq!(Category::Hijacked.name(), "Hijacks");
        assert_eq!(Category::NoSblRecord.name(), "No SBL Record");
    }
}

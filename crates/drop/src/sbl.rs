//! SBL records and the Appendix-A keyword classifier.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::str::FromStr;

use droplens_net::{Asn, ParseError, Quarantine};

use crate::Category;

/// A Spamhaus Block List record identifier, e.g. `SBL310721`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SblId(pub u32);

impl fmt::Display for SblId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SBL{}", self.0)
    }
}

impl FromStr for SblId {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits = s
            .strip_prefix("SBL")
            .ok_or_else(|| ParseError::new("SblId", s, "missing SBL prefix"))?;
        digits
            .parse::<u32>()
            .map(SblId)
            .map_err(|e| ParseError::new("SblId", s, e.to_string()))
    }
}

/// One SBL record: the freeform investigator text Spamhaus publishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SblRecord {
    /// Record id.
    pub id: SblId,
    /// Freeform body.
    pub text: String,
}

impl SblRecord {
    /// Construct a record.
    pub fn new(id: SblId, text: impl Into<String>) -> SblRecord {
        SblRecord {
            id,
            text: text.into(),
        }
    }
}

/// The result of classifying one SBL record.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Classification {
    /// Categories inferred from keywords (empty when no keyword hit — the
    /// paper's 7.3% manual-inference bucket).
    pub categories: BTreeSet<Category>,
    /// Number of distinct keyword groups that fired (the paper reports
    /// 90% one, 2.7% two, 7.3% none).
    pub keyword_hits: usize,
}

/// Classify an SBL record body using the Appendix-A keyword rules:
///
/// * `hijack` or `stolen` → Hijacked
/// * `snowshoe` → Snowshoe Spam
/// * `known spam operation` → Known Spam Operation
/// * `hosting` → Malicious Hosting — **except** when the word only occurs
///   inside an email address or domain name (`billing@ahostinginc.com`
///   must not classify a hijack record as hosting; Table 2)
/// * `unallocated` or `bogon` → Unallocated
pub fn classify(text: &str) -> Classification {
    let lower = text.to_ascii_lowercase();
    let mut categories = BTreeSet::new();
    let mut keyword_hits = 0;

    if lower.contains("hijack") || lower.contains("stolen") {
        categories.insert(Category::Hijacked);
        keyword_hits += 1;
    }
    if lower.contains("snowshoe") {
        categories.insert(Category::SnowshoeSpam);
        keyword_hits += 1;
    }
    if lower.contains("known spam operation") {
        categories.insert(Category::KnownSpamOperation);
        keyword_hits += 1;
    }
    if has_standalone_hosting(&lower) {
        categories.insert(Category::MaliciousHosting);
        keyword_hits += 1;
    }
    if lower.contains("unallocated") || lower.contains("bogon") {
        categories.insert(Category::Unallocated);
        keyword_hits += 1;
    }

    Classification {
        categories,
        keyword_hits,
    }
}

/// True when `hosting` occurs outside an email address or domain name.
fn has_standalone_hosting(lower: &str) -> bool {
    lower
        .split_whitespace()
        .any(|token| token.contains("hosting") && !token.contains('@') && !token.contains('.'))
}

/// Extract every `ASnnnn` mention from a record body — the paper's
/// "malicious ASN" annotation. Returned deduplicated, in order of first
/// appearance.
pub fn extract_asns(text: &str) -> Vec<Asn> {
    let mut out: Vec<Asn> = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i + 2 < bytes.len() {
        // Case-sensitive "AS" followed by digits, not preceded by an
        // alphanumeric (avoids matching inside words like "ALIAS1").
        let boundary = i == 0 || !bytes[i - 1].is_ascii_alphanumeric();
        if boundary && bytes[i] == b'A' && bytes[i + 1] == b'S' && bytes[i + 2].is_ascii_digit() {
            let mut j = i + 2;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                j += 1;
            }
            if let Ok(v) = text[i + 2..j].parse::<u32>() {
                let asn = Asn(v);
                if !out.contains(&asn) {
                    out.push(asn);
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

/// A database of SBL records, with the paper's block text format:
///
/// ```text
/// SBL310721
/// AS204139 spammer hosting
///
/// SBL240976
/// hijacked IP range ... billing@ahostinginc.com
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SblDatabase {
    records: BTreeMap<SblId, SblRecord>,
}

impl SblDatabase {
    /// An empty database.
    pub fn new() -> SblDatabase {
        SblDatabase::default()
    }

    /// Insert (or replace) a record.
    pub fn insert(&mut self, record: SblRecord) {
        self.records.insert(record.id, record);
    }

    /// Look up by id.
    pub fn get(&self, id: SblId) -> Option<&SblRecord> {
        self.records.get(&id)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterate records in id order.
    pub fn iter(&self) -> impl Iterator<Item = &SblRecord> {
        self.records.values()
    }

    /// Serialize as blank-line-separated blocks.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (i, r) in self.records.values().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            out.push_str(&r.id.to_string());
            out.push('\n');
            out.push_str(r.text.trim_end());
            out.push('\n');
        }
        out
    }

    /// Parse the block format written by [`SblDatabase::to_text`].
    pub fn parse(text: &str) -> Result<SblDatabase, ParseError> {
        Self::parse_with(text, &mut Quarantine::strict("sbl/records.txt"))
    }

    /// Parse the block format under the ingestion policy carried by
    /// `quarantine`. The quarantine unit is a record block: a bad header
    /// line quarantines the block (its body lines are swallowed until the
    /// next blank separator) and, in permissive mode, parsing resumes at
    /// the next block.
    pub fn parse_with(text: &str, quarantine: &mut Quarantine) -> Result<SblDatabase, ParseError> {
        let obs = droplens_obs::global();
        let mut tspan = droplens_obs::trace::global().span("parse.drop.sbl", "parse");
        tspan.arg_str("file", quarantine.source());
        let parsed = obs.counter("drop.sbl.parsed");
        let mut db = SblDatabase::new();
        let mut current: Option<(SblId, String)> = None;
        // After a rejected header (permissive mode), swallow the block's
        // body lines instead of misreading them as headers.
        let mut swallowing = false;
        for (idx, line) in text.lines().enumerate() {
            let trimmed = line.trim_end();
            if trimmed.is_empty() {
                swallowing = false;
                if let Some((id, body)) = current.take() {
                    parsed.inc();
                    quarantine.record_ok();
                    db.insert(SblRecord::new(id, body.trim_end()));
                }
                continue;
            }
            if swallowing {
                quarantine.record_skip();
                continue;
            }
            match &mut current {
                None => {
                    let lineno = idx as u32 + 1;
                    let id: SblId = match trimmed.trim().parse() {
                        Ok(id) => id,
                        Err(e) => {
                            obs.counter("drop.sbl.malformed").inc();
                            let e = e.with_location(quarantine.source(), lineno);
                            obs.error_sample("drop.sbl", e.to_string());
                            quarantine.reject(lineno, e)?;
                            swallowing = true;
                            continue;
                        }
                    };
                    current = Some((id, String::new()));
                }
                Some((_, body)) => {
                    body.push_str(trimmed);
                    body.push('\n');
                }
            }
        }
        if let Some((id, body)) = current.take() {
            parsed.inc();
            quarantine.record_ok();
            db.insert(SblRecord::new(id, body.trim_end()));
        }
        tspan.arg_u64("records", db.len() as u64);
        Ok(db)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code: panics are failures
mod tests {
    use super::*;

    #[test]
    fn sbl_id_round_trip() {
        assert_eq!("SBL310721".parse::<SblId>().unwrap(), SblId(310721));
        assert_eq!(SblId(310721).to_string(), "SBL310721");
        assert!("SBLx".parse::<SblId>().is_err());
        assert!("310721".parse::<SblId>().is_err());
    }

    // The six Table 2 excerpts, verbatim classification expectations.
    #[test]
    fn table2_row1_hosting() {
        let c = classify("AS204139 spammer hosting");
        assert_eq!(
            c.categories,
            [Category::MaliciousHosting].into_iter().collect()
        );
        assert_eq!(c.keyword_hits, 1);
    }

    #[test]
    fn table2_row2_hijack_not_hosting() {
        let c = classify("hijacked IP range ... billing@ahostinginc.com");
        assert_eq!(c.categories, [Category::Hijacked].into_iter().collect());
        assert_eq!(c.keyword_hits, 1);
    }

    #[test]
    fn table2_row3_snowshoe_and_hijack_not_hosting() {
        let c =
            classify("Snowshoe IP block on Stolen AS62927 ... james.johnson@networxhosting.com");
        assert_eq!(
            c.categories,
            [Category::Hijacked, Category::SnowshoeSpam]
                .into_iter()
                .collect()
        );
        assert_eq!(c.keyword_hits, 2);
    }

    #[test]
    fn table2_row4_ks_and_snowshoe() {
        let c = classify("Register Of Known Spam Operations ... snowshoe range");
        assert_eq!(
            c.categories,
            [Category::SnowshoeSpam, Category::KnownSpamOperation]
                .into_iter()
                .collect()
        );
    }

    #[test]
    fn table2_row5_ks_and_hijack() {
        let c =
            classify("Register Of Known Spam Operations ... illegal netblock hijacking operation");
        assert_eq!(
            c.categories,
            [Category::Hijacked, Category::KnownSpamOperation]
                .into_iter()
                .collect()
        );
    }

    #[test]
    fn table2_row6_no_keywords() {
        // SBL325529: classified manually as snowshoe; no keyword fires
        // ("spam emission" is not a keyword).
        let c = classify(
            "Department of Defense ... Spamhaus believes that this IP address range is \
             being used or is about to be used for the purpose of high volume spam emission.",
        );
        assert!(c.categories.is_empty());
        assert_eq!(c.keyword_hits, 0);
    }

    #[test]
    fn unallocated_keywords() {
        assert!(classify("unallocated address space, do not route")
            .categories
            .contains(&Category::Unallocated));
        assert!(classify("bogon prefix announced")
            .categories
            .contains(&Category::Unallocated));
    }

    #[test]
    fn hosting_matches_plain_word_variants() {
        assert!(classify("bulletproof hosting operation")
            .categories
            .contains(&Category::MaliciousHosting));
        assert!(classify("spamhosting outfit")
            .categories
            .contains(&Category::MaliciousHosting));
        // Domain-only mention is not hosting.
        assert!(!classify("see report at badhosting.example.com")
            .categories
            .contains(&Category::MaliciousHosting));
    }

    #[test]
    fn asn_extraction() {
        assert_eq!(
            extract_asns("Snowshoe IP block on Stolen AS62927 via AS204139 and AS62927"),
            vec![Asn(62927), Asn(204139)]
        );
        assert!(extract_asns("no asns here; ALIAS12 is not one; aS12 neither").is_empty());
        assert_eq!(extract_asns("AS1"), vec![Asn(1)]);
        assert!(extract_asns("").is_empty());
    }

    #[test]
    fn database_round_trip() {
        let mut db = SblDatabase::new();
        db.insert(SblRecord::new(SblId(310721), "AS204139 spammer hosting"));
        db.insert(SblRecord::new(
            SblId(240976),
            "hijacked IP range\nbilling@ahostinginc.com",
        ));
        let text = db.to_text();
        let parsed = SblDatabase::parse(&text).unwrap();
        assert_eq!(parsed, db);
        assert_eq!(parsed.len(), 2);
        assert_eq!(
            parsed.get(SblId(310721)).unwrap().text,
            "AS204139 spammer hosting"
        );
        assert!(parsed.get(SblId(1)).is_none());
    }

    #[test]
    fn database_parse_rejects_garbage_header() {
        let err = SblDatabase::parse("NOTANID\nbody\n").unwrap_err();
        assert_eq!(err.location(), Some(("sbl/records.txt", 1)));
    }

    #[test]
    fn permissive_parse_quarantines_whole_blocks() {
        let text = "NOTANID\nbody of the bad block\n\nSBL7\ngood body\n";
        let mut q = Quarantine::permissive("sbl/records.txt");
        let db = SblDatabase::parse_with(text, &mut q).unwrap();
        assert_eq!(db.len(), 1);
        assert_eq!(db.get(SblId(7)).unwrap().text, "good body");
        assert_eq!(q.quarantined, 1);
        assert_eq!(q.samples[0].location(), Some(("sbl/records.txt", 1)));
    }

    #[test]
    fn empty_database() {
        let db = SblDatabase::parse("").unwrap();
        assert!(db.is_empty());
        assert_eq!(db.to_text(), "");
    }
}

//! The DROP list file format and the daily-snapshot timeline.
//!
//! A DROP snapshot is the text file Spamhaus publishes (and FireHOL
//! archives) — comment headers, then one `prefix ; SBLnnnnn` line per
//! entry:
//!
//! ```text
//! ; Spamhaus DROP List 2020/12/01 - (c) 2020 The Spamhaus Project
//! ; Last-Modified: Tue, 1 Dec 2020 04:00:00 GMT
//! 132.255.0.0/22 ; SBL502548
//! ```
//!
//! [`DropTimeline`] diffs a chronological series of snapshots into
//! [`DropEntry`] listing episodes with added/removed dates — the unit of
//! analysis for every experiment.

use std::collections::BTreeMap;

use droplens_net::{find_gaps, Date, DateRange, GapSpan, Ipv4Prefix, ParseError, Quarantine};

use crate::SblId;

/// One parsed DROP snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DropSnapshot {
    /// Snapshot day.
    pub date: Date,
    /// Listed prefixes with their SBL reference (if the line carried one).
    pub entries: BTreeMap<Ipv4Prefix, Option<SblId>>,
}

impl DropSnapshot {
    /// An empty snapshot for `date`.
    pub fn new(date: Date) -> DropSnapshot {
        DropSnapshot {
            date,
            entries: BTreeMap::new(),
        }
    }

    /// Add an entry.
    pub fn insert(&mut self, prefix: Ipv4Prefix, sbl: Option<SblId>) {
        self.entries.insert(prefix, sbl);
    }

    /// Serialize in the Spamhaus file shape.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let (y, m, d) = self.date.ymd();
        // One pre-sized buffer; entries stream in via `write!` (~30 bytes
        // each) instead of allocating a String per line.
        let mut out = String::with_capacity(96 + self.entries.len() * 30);
        let _ = write!(
            out,
            "; Spamhaus DROP List {y}/{m:02}/{d:02} - (c) {y} The Spamhaus Project\n; Entries: {}\n",
            self.entries.len()
        );
        for (prefix, sbl) in &self.entries {
            match sbl {
                Some(id) => {
                    let _ = writeln!(out, "{prefix} ; {id}");
                }
                None => {
                    let _ = writeln!(out, "{prefix}");
                }
            }
        }
        out
    }

    /// Parse a snapshot file; the date is supplied by the archive layout
    /// (FireHOL names files by date), not the header comment.
    pub fn parse(date: Date, text: &str) -> Result<DropSnapshot, ParseError> {
        Self::parse_with(
            date,
            text,
            &mut Quarantine::strict(format!("drop/{date}.txt")),
        )
    }

    /// Parse a snapshot file under the ingestion policy carried by
    /// `quarantine`: strict rejects abort; permissive rejects are
    /// quarantined and parsing continues on the next line.
    pub fn parse_with(
        date: Date,
        text: &str,
        quarantine: &mut Quarantine,
    ) -> Result<DropSnapshot, ParseError> {
        let obs = droplens_obs::global();
        let mut tspan = droplens_obs::trace::global().span("parse.drop.list", "parse");
        tspan.arg_str("file", quarantine.source());
        let parsed = obs.counter("drop.list.parsed");
        let skipped = obs.counter("drop.list.skipped");
        let malformed = obs.counter("drop.list.malformed");
        let mut snapshot = DropSnapshot::new(date);
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with(';') || line.starts_with('#') {
                skipped.inc();
                quarantine.record_skip();
                continue;
            }
            let lineno = idx as u32 + 1;
            let (prefix_s, sbl_s) = match line.split_once(';') {
                Some((p, s)) => (p.trim(), Some(s.trim())),
                None => (line, None),
            };
            let entry = prefix_s.parse::<Ipv4Prefix>().and_then(|prefix| {
                let sbl = match sbl_s {
                    Some(s) if !s.is_empty() => Some(s.parse::<SblId>()?),
                    _ => None,
                };
                Ok((prefix, sbl))
            });
            match entry {
                Ok((prefix, sbl)) => {
                    parsed.inc();
                    quarantine.record_ok();
                    snapshot.insert(prefix, sbl);
                }
                Err(e) => {
                    malformed.inc();
                    let e = e.with_location(quarantine.source(), lineno);
                    obs.error_sample("drop.list", e.to_string());
                    quarantine.reject(lineno, e)?;
                }
            }
        }
        tspan.arg_u64("records", snapshot.entries.len() as u64);
        Ok(snapshot)
    }
}

/// Repair quarantine flicker across daily snapshots.
///
/// A *partial* snapshot (one that quarantined at least one malformed
/// line, `partial[i]`) cannot be trusted about absences: the missing
/// prefix may simply have been on the mangled line. A prefix that was
/// listed the day before a partial snapshot and is listed again at its
/// next trusted sighting — with every intervening snapshot also
/// partial — is carried forward instead of being split into two
/// phantom episodes. Absences confirmed by any intact snapshot are
/// left alone, so with clean inputs (every flag false) this is a
/// no-op and strict-mode results are untouched.
pub fn repair_flickers(snapshots: &mut [DropSnapshot], partial: &[bool]) {
    assert_eq!(
        snapshots.len(),
        partial.len(),
        "one partial flag per snapshot"
    );
    for i in 1..snapshots.len() {
        if !partial[i] {
            continue;
        }
        let prev: Vec<(Ipv4Prefix, Option<SblId>)> = snapshots[i - 1]
            .entries
            .iter()
            .map(|(p, s)| (*p, *s))
            .collect();
        for (prefix, sbl) in prev {
            if snapshots[i].entries.contains_key(&prefix) {
                continue;
            }
            let mut j = i + 1;
            let reappears = loop {
                match snapshots.get(j) {
                    Some(s) if s.entries.contains_key(&prefix) => break true,
                    Some(_) if partial[j] => j += 1,
                    // Trusted absence: the removal is real, not flicker.
                    Some(_) => break false,
                    // Ran off the end through partial snapshots only: no
                    // intact snapshot ever confirmed the absence, so the
                    // last trusted state (listed) carries forward.
                    None => break true,
                }
            };
            if reappears {
                let tracer = droplens_obs::trace::global();
                if tracer.is_enabled() {
                    use droplens_obs::trace::ArgValue;
                    tracer.instant(
                        "gap-repair",
                        "ingest",
                        vec![
                            ("source", ArgValue::Str("drop/list".into())),
                            ("date", ArgValue::Str(snapshots[i].date.to_string())),
                            ("prefix", ArgValue::Str(prefix.to_string())),
                        ],
                    );
                }
                snapshots[i].entries.insert(prefix, sbl);
            }
        }
    }
}

/// One listing episode of one prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DropEntry {
    /// The listed prefix.
    pub prefix: Ipv4Prefix,
    /// SBL record reference, if the list carried one.
    pub sbl: Option<SblId>,
    /// First snapshot day the prefix appeared.
    pub added: Date,
    /// First snapshot day the prefix was gone again; `None` if still
    /// listed in the final snapshot.
    pub removed: Option<Date>,
}

impl DropEntry {
    /// The listed period as a half-open range, using `horizon` (one past
    /// the last modeled day) for still-listed entries.
    pub fn listed_range(&self, horizon: Date) -> DateRange {
        DateRange::new(self.added, self.removed.unwrap_or(horizon))
    }

    /// True if the entry was removed before the archive ended.
    pub fn was_removed(&self) -> bool {
        self.removed.is_some()
    }
}

/// Listing episodes reconstructed by diffing chronological snapshots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DropTimeline {
    entries: Vec<DropEntry>,
    snapshot_dates: Vec<Date>,
}

impl DropTimeline {
    /// Diff a chronological series of snapshots. A prefix present in
    /// snapshot N but not N−1 was *added* on N's date; present in N−1 but
    /// not N, *removed* on N's date. Relisting opens a new episode.
    ///
    /// Across a coverage gap the change actually happened on some
    /// unobserved day, so changes surfacing on the first post-gap
    /// snapshot are dated to the gap's first day (the earliest day the
    /// change could have happened) rather than the observation day —
    /// the dating convention that pairs with the carry-forward state
    /// semantics of [`DropTimeline::gaps`]. With a gap-free daily
    /// series this is a no-op.
    ///
    /// Panics if snapshots are out of order.
    pub fn from_snapshots(snapshots: &[DropSnapshot]) -> DropTimeline {
        match Self::try_from_snapshots(snapshots) {
            Ok(timeline) => timeline,
            // Documented invariant of this infallible wrapper; ingestion
            // paths go through `try_from_snapshots` instead.
            // lint: allow(no-unwrap)
            Err(e) => panic!("snapshots must be chronological: {e}"),
        }
    }

    /// Fallible variant of [`DropTimeline::from_snapshots`]: out-of-order
    /// snapshots are reported as a [`ParseError`] instead of panicking,
    /// so ingestion can surface the offending date.
    pub fn try_from_snapshots(snapshots: &[DropSnapshot]) -> Result<DropTimeline, ParseError> {
        let mut entries: Vec<DropEntry> = Vec::new();
        let mut open: BTreeMap<Ipv4Prefix, usize> = BTreeMap::new();
        let mut snapshot_dates: Vec<Date> = Vec::with_capacity(snapshots.len());
        for snap in snapshots {
            if let Some(&prev) = snapshot_dates.last() {
                if prev >= snap.date {
                    // Chronology check over already-parsed snapshots:
                    // there is no file/line here, and the error names
                    // the offending snapshot date instead.
                    // lint: allow(located-errors)
                    return Err(ParseError::new(
                        "DropTimeline",
                        &snap.date.to_string(),
                        format!("snapshot out of chronological order (follows {prev})"),
                    ));
                }
            }
            // Changes observed on the first snapshot after a gap are
            // dated to the gap's first day (see the method docs).
            let change_date = match snapshot_dates.last() {
                Some(&prev) if snap.date - prev > 1 => prev + 1,
                _ => snap.date,
            };
            snapshot_dates.push(snap.date);
            // Additions and SBL back-fill.
            for (&prefix, &sbl) in &snap.entries {
                match open.get(&prefix) {
                    Some(&idx) => {
                        // Lists occasionally gain the SBL reference later.
                        if entries[idx].sbl.is_none() {
                            entries[idx].sbl = sbl;
                        }
                    }
                    None => {
                        open.insert(prefix, entries.len());
                        entries.push(DropEntry {
                            prefix,
                            sbl,
                            added: change_date,
                            removed: None,
                        });
                    }
                }
            }
            // Removals.
            let removed: Vec<Ipv4Prefix> = open
                .keys()
                .filter(|p| !snap.entries.contains_key(p))
                .copied()
                .collect();
            for prefix in removed {
                if let Some(idx) = open.remove(&prefix) {
                    entries[idx].removed = Some(change_date);
                }
            }
        }
        Ok(DropTimeline {
            entries,
            snapshot_dates,
        })
    }

    /// The snapshot dates the timeline was diffed from, in order.
    pub fn snapshot_dates(&self) -> &[Date] {
        &self.snapshot_dates
    }

    /// Missing days in the (nominally daily) snapshot series. A change
    /// that happened inside a gap surfaces on its first post-gap
    /// snapshot and is dated to the gap's first day (see
    /// [`DropTimeline::try_from_snapshots`]).
    pub fn gaps(&self) -> Vec<GapSpan> {
        find_gaps(&self.snapshot_dates, 1)
    }

    /// All episodes, in add order (ties broken by prefix order).
    pub fn entries(&self) -> &[DropEntry] {
        &self.entries
    }

    /// Episodes for one prefix.
    pub fn for_prefix(&self, prefix: &Ipv4Prefix) -> Vec<&DropEntry> {
        self.entries
            .iter()
            .filter(|e| e.prefix == *prefix)
            .collect()
    }

    /// Unique prefixes ever listed.
    pub fn unique_prefixes(&self) -> Vec<Ipv4Prefix> {
        let mut out: Vec<Ipv4Prefix> = self.entries.iter().map(|e| e.prefix).collect();
        out.sort();
        out.dedup();
        out
    }

    /// True if `prefix` was listed on `date`.
    pub fn listed_on(&self, prefix: &Ipv4Prefix, date: Date) -> bool {
        self.entries
            .iter()
            .any(|e| e.prefix == *prefix && e.added <= date && e.removed.is_none_or(|r| date < r))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code: panics are failures
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn d(s: &str) -> Date {
        s.parse().unwrap()
    }

    #[test]
    fn snapshot_round_trip() {
        let mut s = DropSnapshot::new(d("2020-12-01"));
        s.insert(p("132.255.0.0/22"), Some(SblId(502548)));
        s.insert(p("5.188.0.0/17"), None);
        let text = s.to_text();
        assert!(text.starts_with("; Spamhaus DROP List 2020/12/01"));
        assert!(text.contains("132.255.0.0/22 ; SBL502548"));
        let parsed = DropSnapshot::parse(d("2020-12-01"), &text).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn snapshot_parse_rejects_garbage() {
        assert!(DropSnapshot::parse(d("2020-01-01"), "not-a-prefix ; SBL1\n").is_err());
        assert!(DropSnapshot::parse(d("2020-01-01"), "10.0.0.0/8 ; NOTSBL\n").is_err());
    }

    #[test]
    fn snapshot_parse_tolerates_comments() {
        let text = "; header\n# other\n\n10.0.0.0/8 ; SBL7\n";
        let s = DropSnapshot::parse(d("2020-01-01"), text).unwrap();
        assert_eq!(s.entries.len(), 1);
    }

    fn snap(date: &str, entries: &[(&str, u32)]) -> DropSnapshot {
        let mut s = DropSnapshot::new(d(date));
        for (prefix, id) in entries {
            s.insert(p(prefix), Some(SblId(*id)));
        }
        s
    }

    #[test]
    fn timeline_add_and_remove() {
        let timeline = DropTimeline::from_snapshots(&[
            snap("2020-01-01", &[("10.0.0.0/16", 1)]),
            snap("2020-01-02", &[("10.0.0.0/16", 1), ("11.0.0.0/16", 2)]),
            snap("2020-01-03", &[("11.0.0.0/16", 2)]),
        ]);
        let entries = timeline.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].prefix, p("10.0.0.0/16"));
        assert_eq!(entries[0].added, d("2020-01-01"));
        assert_eq!(entries[0].removed, Some(d("2020-01-03")));
        assert!(entries[0].was_removed());
        assert_eq!(entries[1].added, d("2020-01-02"));
        assert_eq!(entries[1].removed, None);
        assert!(!entries[1].was_removed());
    }

    #[test]
    fn relisting_opens_new_episode() {
        let timeline = DropTimeline::from_snapshots(&[
            snap("2020-01-01", &[("10.0.0.0/16", 1)]),
            snap("2020-02-01", &[]),
            snap("2020-03-01", &[("10.0.0.0/16", 1)]),
        ]);
        let eps = timeline.for_prefix(&p("10.0.0.0/16"));
        assert_eq!(eps.len(), 2);
        // Both changes surfaced right after a month-long coverage gap, so
        // both are dated to the gap's first day, not the observation day.
        assert_eq!(eps[0].removed, Some(d("2020-01-02")));
        assert_eq!(eps[1].added, d("2020-02-02"));
        assert_eq!(timeline.unique_prefixes().len(), 1);
    }

    #[test]
    fn listed_on() {
        let timeline = DropTimeline::from_snapshots(&[
            snap("2020-01-01", &[("10.0.0.0/16", 1)]),
            snap("2020-02-01", &[]),
        ]);
        let pfx = p("10.0.0.0/16");
        assert!(timeline.listed_on(&pfx, d("2020-01-01")));
        // The removal observed on 2020-02-01 is dated into the gap
        // (2020-01-02), so mid-gap days count as unlisted.
        assert!(!timeline.listed_on(&pfx, d("2020-01-15")));
        assert!(!timeline.listed_on(&pfx, d("2020-02-01")));
        assert!(!timeline.listed_on(&p("99.0.0.0/8"), d("2020-01-15")));
    }

    #[test]
    fn listed_range_uses_horizon_for_open_entries() {
        let timeline = DropTimeline::from_snapshots(&[snap("2020-01-01", &[("10.0.0.0/16", 1)])]);
        let e = &timeline.entries()[0];
        let r = e.listed_range(d("2022-03-31"));
        assert_eq!(r.start(), d("2020-01-01"));
        assert_eq!(r.end(), d("2022-03-31"));
    }

    #[test]
    fn sbl_backfill() {
        let mut s1 = DropSnapshot::new(d("2020-01-01"));
        s1.insert(p("10.0.0.0/16"), None);
        let mut s2 = DropSnapshot::new(d("2020-01-02"));
        s2.insert(p("10.0.0.0/16"), Some(SblId(42)));
        let timeline = DropTimeline::from_snapshots(&[s1, s2]);
        assert_eq!(timeline.entries()[0].sbl, Some(SblId(42)));
        assert_eq!(timeline.entries()[0].added, d("2020-01-01"));
    }

    #[test]
    #[should_panic]
    fn out_of_order_snapshots_panic() {
        DropTimeline::from_snapshots(&[snap("2020-02-01", &[]), snap("2020-01-01", &[])]);
    }

    #[test]
    fn empty_timeline() {
        let t = DropTimeline::from_snapshots(&[]);
        assert!(t.entries().is_empty());
        assert!(t.unique_prefixes().is_empty());
        assert!(t.gaps().is_empty());
    }

    #[test]
    fn try_from_snapshots_reports_out_of_order() {
        let err =
            DropTimeline::try_from_snapshots(&[snap("2020-02-01", &[]), snap("2020-01-01", &[])])
                .unwrap_err();
        assert!(err.to_string().contains("chronological"), "{err}");
    }

    #[test]
    fn timeline_records_snapshot_gaps() {
        let t = DropTimeline::from_snapshots(&[
            snap("2020-01-01", &[("10.0.0.0/16", 1)]),
            snap("2020-01-02", &[("10.0.0.0/16", 1)]),
            snap("2020-01-06", &[]),
        ]);
        assert_eq!(t.snapshot_dates().len(), 3);
        let gaps = t.gaps();
        assert_eq!(gaps.len(), 1);
        assert_eq!(gaps[0].start, d("2020-01-03"));
        assert_eq!(gaps[0].days(), 3);
        // The removal happened somewhere inside the gap; it is dated to
        // the gap's first day (the earliest day it could have happened).
        assert_eq!(t.entries()[0].removed, Some(d("2020-01-03")));
    }

    #[test]
    fn permissive_parse_quarantines_bad_lines() {
        let text = "10.0.0.0/8 ; SBL7\nnot-a-prefix ; SBL1\n11.0.0.0/8 ; SBL8\n";
        // Strict: aborts with per-file location.
        let err = DropSnapshot::parse(d("2020-01-01"), text).unwrap_err();
        assert_eq!(err.location(), Some(("drop/2020-01-01.txt", 2)));
        // Permissive: the bad line is quarantined.
        let mut q = Quarantine::permissive("drop/2020-01-01.txt");
        let s = DropSnapshot::parse_with(d("2020-01-01"), text, &mut q).unwrap();
        assert_eq!(s.entries.len(), 2);
        assert_eq!(q.quarantined, 1);
    }
}

//! Binary sidecar codecs (`droplens-bin/1`) for DROP snapshots and SBL
//! databases.
//!
//! The canonical forms stay textual — the Spamhaus file shape parsed by
//! [`DropSnapshot::parse_with`] and the block format parsed by
//! [`SblDatabase::parse_with`]. These codecs store the same records in
//! length-prefixed little-endian columns, which load without per-line
//! scanning; `droplens-core`'s round-trip equivalence test proves both
//! paths build byte-identical studies.

use droplens_net::{BinReader, BinWriter, Date, Ipv4Prefix, ParseError, Quarantine, NO_ID};

use crate::{DropSnapshot, SblDatabase, SblId, SblRecord};

/// Kind tag of the binary DROP-snapshot sidecar.
pub const SNAPSHOT_BIN_KIND: &str = "drop/snapshot";

/// Kind tag of the binary SBL-database sidecar.
pub const SBL_BIN_KIND: &str = "sbl/records";

/// Serialize a DROP snapshot as a binary sidecar: the snapshot date,
/// then per-entry columns (prefix addr, prefix len, SBL id with
/// [`NO_ID`] = absent) in prefix order — the same deterministic order
/// [`DropSnapshot::to_text`] emits.
pub fn write_snapshot_bin(snapshot: &DropSnapshot) -> Vec<u8> {
    let mut w = BinWriter::new(SNAPSHOT_BIN_KIND);
    w.put_i32(snapshot.date.days_since_epoch());
    w.put_u32(snapshot.entries.len() as u32);
    for prefix in snapshot.entries.keys() {
        w.put_u32(prefix.network_u32());
    }
    for prefix in snapshot.entries.keys() {
        w.put_u8(prefix.len());
    }
    for sbl in snapshot.entries.values() {
        w.put_u32(sbl.map_or(NO_ID, |id| id.0));
    }
    w.finish()
}

/// Decode the payload of a binary snapshot sidecar (all-or-nothing).
/// The archive layout supplies `date`, exactly as in the text path; the
/// stored date must agree.
fn decode_snapshot_bin(date: Date, bytes: &[u8]) -> Result<DropSnapshot, ParseError> {
    let mut r = BinReader::new(bytes, SNAPSHOT_BIN_KIND)?;
    let stored = Date::from_days_since_epoch(r.i32("date")?);
    if stored != date {
        return Err(ParseError::new(
            "BinArchive",
            SNAPSHOT_BIN_KIND,
            format!("snapshot date {stored} disagrees with archive layout {date}"),
        ));
    }
    let n = r.count("entry count", 9)?;
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        addrs.push(r.u32("prefix addr")?);
    }
    let mut lens = Vec::with_capacity(n);
    for _ in 0..n {
        let len = r.u8("prefix len")?;
        if len > 32 {
            return Err(ParseError::new(
                "BinArchive",
                SNAPSHOT_BIN_KIND,
                "prefix len > 32",
            ));
        }
        lens.push(len);
    }
    let mut snapshot = DropSnapshot::new(date);
    for i in 0..n {
        let raw = r.u32("sbl id")?;
        let sbl = (raw != NO_ID).then_some(SblId(raw));
        snapshot.insert(Ipv4Prefix::from_u32(addrs[i], lens[i]), sbl);
    }
    r.expect_done()?;
    Ok(snapshot)
}

/// Parse a binary snapshot sidecar strictly: any damage aborts.
pub fn parse_snapshot_bin(date: Date, bytes: &[u8]) -> Result<DropSnapshot, ParseError> {
    parse_snapshot_bin_with(
        date,
        bytes,
        &mut Quarantine::strict(format!("drop/{date}.bin")),
    )
}

/// Parse a binary snapshot sidecar under the ingestion policy carried by
/// `quarantine`. Binary archives cannot be resynchronized mid-stream, so
/// damage quarantines the whole sidecar: strict aborts, permissive
/// records the rejection and returns an empty snapshot (callers fall
/// back to the canonical text archive).
pub fn parse_snapshot_bin_with(
    date: Date,
    bytes: &[u8],
    quarantine: &mut Quarantine,
) -> Result<DropSnapshot, ParseError> {
    let obs = droplens_obs::global();
    let mut tspan = droplens_obs::trace::global().span("parse.drop.list", "parse");
    tspan.arg_str("file", quarantine.source());
    match decode_snapshot_bin(date, bytes) {
        Ok(snapshot) => {
            obs.counter("drop.list.parsed")
                .add(snapshot.entries.len() as u64);
            for _ in &snapshot.entries {
                quarantine.record_ok();
            }
            tspan.arg_u64("records", snapshot.entries.len() as u64);
            Ok(snapshot)
        }
        Err(e) => {
            obs.counter("drop.list.malformed").inc();
            let e = e.with_location(quarantine.source(), 0);
            obs.error_sample("drop.list", e.to_string());
            quarantine.reject(0, e)?;
            Ok(DropSnapshot::new(date))
        }
    }
}

/// Serialize an SBL database as a binary sidecar: `u32 count`, then
/// `(u32 id, str body)` per record in id order — the same deterministic
/// order [`SblDatabase::to_text`] emits.
pub fn write_sbl_bin(db: &SblDatabase) -> Vec<u8> {
    let mut w = BinWriter::new(SBL_BIN_KIND);
    w.put_u32(db.len() as u32);
    for r in db.iter() {
        w.put_u32(r.id.0);
        w.put_str(&r.text);
    }
    w.finish()
}

/// Decode the payload of a binary SBL sidecar (all-or-nothing).
fn decode_sbl_bin(bytes: &[u8]) -> Result<SblDatabase, ParseError> {
    let mut r = BinReader::new(bytes, SBL_BIN_KIND)?;
    let n = r.count("record count", 8)?;
    let mut db = SblDatabase::new();
    for _ in 0..n {
        let id = SblId(r.u32("sbl id")?);
        let text = r.str("record body")?;
        db.insert(SblRecord::new(id, text));
    }
    r.expect_done()?;
    Ok(db)
}

/// Parse a binary SBL sidecar strictly: any damage aborts.
pub fn parse_sbl_bin(bytes: &[u8]) -> Result<SblDatabase, ParseError> {
    parse_sbl_bin_with(bytes, &mut Quarantine::strict("sbl/records.bin"))
}

/// Parse a binary SBL sidecar under the ingestion policy carried by
/// `quarantine`: strict aborts on damage, permissive records the
/// rejection and returns an empty database.
pub fn parse_sbl_bin_with(
    bytes: &[u8],
    quarantine: &mut Quarantine,
) -> Result<SblDatabase, ParseError> {
    let obs = droplens_obs::global();
    let mut tspan = droplens_obs::trace::global().span("parse.drop.sbl", "parse");
    tspan.arg_str("file", quarantine.source());
    match decode_sbl_bin(bytes) {
        Ok(db) => {
            obs.counter("drop.sbl.parsed").add(db.len() as u64);
            for _ in 0..db.len() {
                quarantine.record_ok();
            }
            tspan.arg_u64("records", db.len() as u64);
            Ok(db)
        }
        Err(e) => {
            obs.counter("drop.sbl.malformed").inc();
            let e = e.with_location(quarantine.source(), 0);
            obs.error_sample("drop.sbl", e.to_string());
            quarantine.reject(0, e)?;
            Ok(SblDatabase::new())
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code: panics are failures
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn d(s: &str) -> Date {
        s.parse().unwrap()
    }

    fn sample_snapshot() -> DropSnapshot {
        let mut s = DropSnapshot::new(d("2020-12-01"));
        s.insert(p("132.255.0.0/22"), Some(SblId(502548)));
        s.insert(p("5.188.0.0/17"), None);
        s
    }

    #[test]
    fn snapshot_binary_round_trip_matches_text_parse() {
        let s = sample_snapshot();
        let bytes = write_snapshot_bin(&s);
        let parsed = parse_snapshot_bin(d("2020-12-01"), &bytes).unwrap();
        assert_eq!(parsed, s);
        // Binary and text decode to the very same snapshot.
        assert_eq!(
            DropSnapshot::parse(d("2020-12-01"), &s.to_text()).unwrap(),
            parsed
        );
    }

    #[test]
    fn snapshot_binary_rejects_layout_date_mismatch() {
        let bytes = write_snapshot_bin(&sample_snapshot());
        assert!(parse_snapshot_bin(d("2021-01-01"), &bytes).is_err());
    }

    #[test]
    fn snapshot_truncation_strict_aborts_permissive_quarantines() {
        let mut bytes = write_snapshot_bin(&sample_snapshot());
        bytes.truncate(bytes.len() - 1);
        assert!(parse_snapshot_bin(d("2020-12-01"), &bytes).is_err());
        let mut q = Quarantine::permissive("drop/2020-12-01.bin");
        let s = parse_snapshot_bin_with(d("2020-12-01"), &bytes, &mut q).unwrap();
        assert!(s.entries.is_empty());
        assert_eq!(q.quarantined, 1);
    }

    #[test]
    fn sbl_binary_round_trip_matches_text_parse() {
        let mut db = SblDatabase::new();
        db.insert(SblRecord::new(SblId(310721), "AS204139 spammer hosting"));
        db.insert(SblRecord::new(
            SblId(240976),
            "hijacked IP range\nbilling@ahostinginc.com",
        ));
        let bytes = write_sbl_bin(&db);
        let parsed = parse_sbl_bin(&bytes).unwrap();
        assert_eq!(parsed, db);
        assert_eq!(SblDatabase::parse(&db.to_text()).unwrap(), parsed);
    }

    #[test]
    fn sbl_binary_keeps_bodies_text_cannot() {
        // The block text format cannot round-trip a body with a blank
        // line; the binary sidecar can (length-prefixed, no sentinels).
        let mut db = SblDatabase::new();
        db.insert(SblRecord::new(SblId(7), "para one\n\npara two"));
        let parsed = parse_sbl_bin(&write_sbl_bin(&db)).unwrap();
        assert_eq!(parsed.get(SblId(7)).unwrap().text, "para one\n\npara two");
    }

    #[test]
    fn sbl_truncation_strict_aborts_permissive_quarantines() {
        let mut db = SblDatabase::new();
        db.insert(SblRecord::new(SblId(1), "body"));
        let mut bytes = write_sbl_bin(&db);
        bytes.truncate(bytes.len() - 1);
        assert!(parse_sbl_bin(&bytes).is_err());
        let mut q = Quarantine::permissive("sbl/records.bin");
        assert!(parse_sbl_bin_with(&bytes, &mut q).unwrap().is_empty());
        assert_eq!(q.quarantined, 1);
    }
}

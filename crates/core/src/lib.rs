//! The droplens analysis pipeline — the paper's primary contribution.
//!
//! This crate correlates the five longitudinal data sources (DROP/SBL,
//! BGP, IRR, RPKI, RIR stats) and computes **every table and figure** of
//! *"Stop, DROP, and ROA"* (IMC 2022):
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`experiments::fig1`] | Figure 1 — DROP classification by prefix & space |
//! | [`experiments::fig2`] | Figure 2 — withdrawal CDF + filtering peers |
//! | [`experiments::table1`] | Table 1 — RPKI signing rates by region |
//! | [`experiments::sec5`] | §5 — IRR effectiveness statistics |
//! | [`experiments::fig3`] | Figure 3 — forged-IRR lead-time CDFs |
//! | [`experiments::fig4`] | Figure 4 — RPKI-valid hijack case study |
//! | [`experiments::fig5`] | Figure 5 — routing status of ROAs over time |
//! | [`experiments::fig6`] | Figure 6 — unallocated listings vs AS0 policies |
//! | [`experiments::fig7`] | Figure 7 — RIR free pools over time |
//! | [`experiments::table2`] | Table 2 / Appendix A — SBL classifier |
//! | [`experiments::sec4`] | §4.1 — deallocation after listing |
//! | [`experiments::sec6`] | §6 — RPKI-signed hijacks, operator/RIR AS0 |
//!
//! The entry point is [`Study`]: build it from a generated
//! [`droplens_synth::World`] (or from raw archive text via
//! [`Study::from_text`]), then hand it to the experiment modules. Each
//! experiment returns a typed result that renders (`Display`) as the
//! table/series the paper prints, so the bench harness regenerates the
//! evaluation verbatim.

#![warn(missing_docs)]

pub mod experiments;
pub mod paper;
mod study;

// The table/series renderers moved into droplens-obs (the run-report
// renderer shares them); the long-standing `droplens_core::report` path
// keeps working via this re-export.
pub use droplens_obs::report;

pub use droplens_net::{IngestError, IngestPolicy, IngestReport};
pub use study::{Study, StudyConfig, StudyEntry};

//! The paper's published values, and an automated scorecard.
//!
//! EXPERIMENTS.md narrates paper-vs-measured; this module *checks* it:
//! every numeric claim the reproduction targets is encoded as a
//! [`Target`] with the paper's value and a tolerance band, and
//! [`scorecard`] evaluates all of them against a computed [`Study`].
//! The reproduce binary prints the scorecard; the paper-scale regression
//! test asserts every in-band verdict.
//!
//! Bands are deliberately loose for sampled statistics (the world is
//! synthetic and seeded) and tight for structural quantities the
//! analysis must recover exactly.

use std::fmt;

use droplens_drop::Category;
use droplens_rir::Rir;

use crate::experiments;
use crate::report::TextTable;
use crate::Study;

/// How a quantity is expressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// A count of things.
    Count,
    /// A fraction in [0, 1].
    Fraction,
    /// /8-equivalents of address space.
    Slash8,
}

/// One numeric claim from the paper, with the measured value.
#[derive(Debug, Clone)]
pub struct Target {
    /// Where in the paper the number lives.
    pub source: &'static str,
    /// What it measures.
    pub quantity: &'static str,
    /// The paper's published value.
    pub paper: f64,
    /// Our measured value.
    pub measured: f64,
    /// Unit of both values.
    pub unit: Unit,
    /// Acceptable absolute deviation.
    pub tolerance: f64,
}

impl Target {
    /// True when the measured value is within the band.
    pub fn in_band(&self) -> bool {
        (self.measured - self.paper).abs() <= self.tolerance
    }
}

/// Every experiment's typed result, computed once and shared between the
/// presentation pass (`reproduce` prints each in paper order) and the
/// scorecard — the suite is never computed twice per run.
pub struct ExperimentResults {
    /// Study overview.
    pub summary: experiments::summary::Summary,
    /// Figure 1 — classification of DROP entries.
    pub fig1: experiments::fig1::Fig1,
    /// Figure 2 — effects of blocklisting on visibility.
    pub fig2: experiments::fig2::Fig2,
    /// Table 1 — RPKI signing rates.
    pub table1: experiments::table1::Table1,
    /// Section 5 — effectiveness of the IRR.
    pub sec5: experiments::sec5::Sec5,
    /// Figure 3 — forged-IRR lead times.
    pub fig3: experiments::fig3::Fig3,
    /// Figure 4 / §6.1 — RPKI-signed hijacks.
    pub fig4: experiments::fig4::Fig4,
    /// Figure 5 — routing status of ROAs.
    pub fig5: experiments::fig5::Fig5,
    /// Figure 6 — unallocated space on DROP vs AS0 policies.
    pub fig6: experiments::fig6::Fig6,
    /// Figure 7 — RIR free pools.
    pub fig7: experiments::fig7::Fig7,
    /// Table 2 / Appendix A — SBL categorization.
    pub table2: experiments::table2::Table2,
    /// Section 4.1 — deallocation after listing.
    pub sec4: experiments::sec4::Sec4,
    /// Section 6.2 — AS0 at operator and RIR level.
    pub sec6: experiments::sec6::Sec6,
    /// Extension — maxLength sub-prefix hijack surface.
    pub ext_maxlen: experiments::ext_maxlen::ExtMaxLen,
    /// Extension — counterfactual ROV deployment.
    pub ext_rov: experiments::ext_rov::ExtRov,
    /// Extension — attacker-AS dossiers.
    pub ext_profiles: experiments::ext_profiles::ExtProfiles,
}

/// Run one experiment, optionally recording its wall clock as an obs span
/// at `<span_prefix>/<name>`. Spans are recorded with explicit full paths
/// because the experiments may run on worker threads, where the span
/// stack's automatic nesting would lose the caller's prefix.
fn timed<T>(span_prefix: Option<&str>, name: &str, f: impl FnOnce() -> T) -> T {
    match span_prefix {
        None => f(),
        Some(prefix) => {
            // The trace span still nests automatically: the worker
            // adopted the caller's span when the join fanned out.
            let tspan = droplens_obs::trace::global().span(name, "experiment");
            let t0 = droplens_obs::Stopwatch::start();
            let v = f();
            tspan.finish();
            droplens_obs::global().record_span(&format!("{prefix}/{name}"), t0.elapsed());
            v
        }
    }
}

impl ExperimentResults {
    /// Compute all sixteen experiments, fanning out across workers.
    /// Results land in named fields, so the output is identical at any
    /// `DROPLENS_THREADS`.
    pub fn compute(study: &Study) -> ExperimentResults {
        Self::compute_with_spans(study, None)
    }

    /// [`Self::compute`], recording each experiment's wall clock under
    /// `<span_prefix>/<name>` (e.g. `reproduce/experiments/fig5`).
    pub fn compute_with_spans(study: &Study, span_prefix: Option<&str>) -> ExperimentResults {
        let p = span_prefix;
        let (
            (summary, fig1, fig2, table1),
            (sec5, fig3, fig4, fig5),
            (fig6, fig7, table2, sec4),
            (sec6, ext_maxlen, ext_rov, ext_profiles),
        ) = droplens_par::join4(
            || {
                droplens_par::join4(
                    || timed(p, "summary", || experiments::summary::compute(study)),
                    || timed(p, "fig1", || experiments::fig1::compute(study)),
                    || timed(p, "fig2", || experiments::fig2::compute(study)),
                    || timed(p, "table1", || experiments::table1::compute(study)),
                )
            },
            || {
                droplens_par::join4(
                    || timed(p, "sec5", || experiments::sec5::compute(study)),
                    || timed(p, "fig3", || experiments::fig3::compute(study)),
                    || timed(p, "fig4", || experiments::fig4::compute(study)),
                    || timed(p, "fig5", || experiments::fig5::compute(study)),
                )
            },
            || {
                droplens_par::join4(
                    || timed(p, "fig6", || experiments::fig6::compute(study)),
                    || timed(p, "fig7", || experiments::fig7::compute(study)),
                    || timed(p, "table2", || experiments::table2::compute(study)),
                    || timed(p, "sec4", || experiments::sec4::compute(study)),
                )
            },
            || {
                droplens_par::join4(
                    || timed(p, "sec6", || experiments::sec6::compute(study)),
                    || timed(p, "ext_maxlen", || experiments::ext_maxlen::compute(study)),
                    || timed(p, "ext_rov", || experiments::ext_rov::compute(study)),
                    || {
                        timed(p, "ext_profiles", || {
                            experiments::ext_profiles::compute(study)
                        })
                    },
                )
            },
        );
        ExperimentResults {
            summary,
            fig1,
            fig2,
            table1,
            sec5,
            fig3,
            fig4,
            fig5,
            fig6,
            fig7,
            table2,
            sec4,
            sec6,
            ext_maxlen,
            ext_rov,
            ext_profiles,
        }
    }
}

/// Evaluate every target against the study, computing the experiment
/// suite first. Callers that already hold an [`ExperimentResults`]
/// (like `reproduce`) should use [`scorecard_with`] instead.
pub fn scorecard(study: &Study) -> Vec<Target> {
    scorecard_with(study, &ExperimentResults::compute(study))
}

/// Evaluate every target against precomputed experiment results.
pub fn scorecard_with(study: &Study, results: &ExperimentResults) -> Vec<Target> {
    let ExperimentResults {
        fig1,
        fig2,
        table1: t1,
        sec5: s5,
        fig3,
        fig4,
        fig5,
        fig6,
        table2: t2,
        sec4: s4,
        sec6: s6,
        ..
    } = results;

    let hijack_labeled = study.with_category(Category::Hijacked).count();
    let asn_labeled = study
        .entries
        .iter()
        .filter(|e| e.hijacker_asn().is_some() && !e.afrinic_incident)
        .count();
    let (one_kw, _, none_kw) = t2.distribution();
    let Some(last5) = fig5.points.last() else {
        return Vec::new(); // degenerate: an empty study window has no samples
    };
    let arin_unsigned_share = {
        let total: droplens_net::AddressSpace = fig5.unsigned_by_rir.iter().map(|(_, s)| *s).sum();
        fig5.unsigned_by_rir
            .iter()
            .find(|(r, _)| *r == Rir::Arin)
            .map(|(_, s)| s.fraction_of(total))
            .unwrap_or(0.0)
    };

    let t = |source, quantity, paper, measured, unit, tolerance| Target {
        source,
        quantity,
        paper,
        measured,
        unit,
        tolerance,
    };

    vec![
        // §3.1 population — structural.
        t(
            "§3.1",
            "unique prefixes on DROP",
            712.0,
            fig1.total_prefixes as f64,
            Unit::Count,
            0.0,
        ),
        t(
            "§3.1",
            "prefixes labeled hijacked",
            179.0,
            hijack_labeled as f64,
            Unit::Count,
            4.0,
        ),
        t(
            "§5",
            "hijacks with labeled ASN",
            130.0,
            asn_labeled as f64,
            Unit::Count,
            4.0,
        ),
        t(
            "§3.1",
            "incident share of prefixes",
            0.063,
            fig1.incident_prefix_fraction,
            Unit::Fraction,
            0.01,
        ),
        t(
            "§3.1",
            "incident share of space",
            0.488,
            fig1.incident_space_fraction,
            Unit::Fraction,
            0.06,
        ),
        // Figure 2.
        t(
            "Fig 2",
            "withdrawn ≤30d overall",
            0.19,
            fig2.overall_30d(),
            Unit::Fraction,
            0.05,
        ),
        t(
            "Fig 2",
            "withdrawn ≤30d hijacked",
            0.707,
            fig2.hijacked_30d(),
            Unit::Fraction,
            0.08,
        ),
        t(
            "Fig 2",
            "withdrawn ≤30d unallocated",
            0.548,
            fig2.unallocated_30d(),
            Unit::Fraction,
            0.14,
        ),
        t(
            "Fig 2",
            "DROP-filtering peers",
            3.0,
            fig2.filtering_peers.len() as f64,
            Unit::Count,
            0.0,
        ),
        // Table 1.
        t(
            "Tab 1",
            "signing rate, never on DROP",
            0.223,
            t1.overall.never.fraction(),
            Unit::Fraction,
            0.04,
        ),
        t(
            "Tab 1",
            "signing rate, removed",
            0.425,
            t1.overall.removed.fraction(),
            Unit::Fraction,
            0.08,
        ),
        t(
            "Tab 1",
            "signing rate, present",
            0.138,
            t1.overall.present.fraction(),
            Unit::Fraction,
            0.09,
        ),
        t(
            "§4.2",
            "removed-signed w/ different ASN",
            0.823,
            t1.different_asn_fraction(),
            Unit::Fraction,
            0.12,
        ),
        // §5.
        t(
            "§5",
            "listings w/ route object (7d)",
            0.317,
            s5.with_route_object as f64 / s5.total.max(1) as f64,
            Unit::Fraction,
            0.04,
        ),
        t(
            "§5",
            "space of listings w/ objects",
            0.688,
            s5.space_fraction,
            Unit::Fraction,
            0.09,
        ),
        t(
            "§5",
            "objects created month before",
            0.32,
            s5.created_month_before as f64 / s5.with_route_object.max(1) as f64,
            Unit::Fraction,
            0.08,
        ),
        t(
            "§5",
            "objects removed month after",
            0.43,
            s5.removed_month_after as f64 / s5.with_route_object.max(1) as f64,
            Unit::Fraction,
            0.09,
        ),
        t(
            "§5",
            "hijacks w/ matching route object",
            0.45,
            s5.matching_asn as f64 / s5.labeled_hijacks.max(1) as f64,
            Unit::Fraction,
            0.04,
        ),
        t(
            "§5",
            "top-3 ORG share of matches",
            49.0,
            s5.top3_org_prefixes as f64,
            Unit::Count,
            3.0,
        ),
        t(
            "§5",
            "unallocated w/ route object",
            1.0,
            s5.unallocated_with_object as f64,
            Unit::Count,
            0.0,
        ),
        // Figure 3.
        t(
            "Fig 3",
            "late-IRR outliers",
            2.0,
            fig3.announced_before_record() as f64,
            Unit::Count,
            2.0,
        ),
        // Figure 4 / §6.1.
        t(
            "§6.1",
            "hijacks signed before listing",
            3.0,
            fig4.signed_before_listing.len() as f64,
            Unit::Count,
            1.0,
        ),
        t(
            "§6.1",
            "attacker-controlled ROAs",
            2.0,
            fig4.attacker_controlled.len() as f64,
            Unit::Count,
            0.0,
        ),
        t(
            "Fig 4",
            "pattern-sweep prefixes",
            7.0,
            fig4.case.as_ref().map(|c| c.pattern.len()).unwrap_or(0) as f64,
            Unit::Count,
            0.0,
        ),
        t(
            "Fig 4",
            "pattern prefixes DROP-listed",
            4.0,
            fig4.case
                .as_ref()
                .map(|c| c.pattern.iter().filter(|r| r.listed.is_some()).count())
                .unwrap_or(0) as f64,
            Unit::Count,
            0.0,
        ),
        // Figure 5.
        t(
            "Fig 5",
            "signed-unrouted space (/8s)",
            6.7,
            last5.signed_unrouted.slash8_equivalents(),
            Unit::Slash8,
            0.5,
        ),
        t(
            "Fig 5",
            "alloc-unrouted-no-ROA (/8s)",
            30.0,
            last5.allocated_unrouted_unsigned.slash8_equivalents(),
            Unit::Slash8,
            1.5,
        ),
        t(
            "Fig 5",
            "% of signed space routed",
            0.905,
            last5.routed_fraction(),
            Unit::Fraction,
            0.03,
        ),
        t(
            "Fig 5",
            "ARIN share of unsigned-unrouted",
            0.608,
            arin_unsigned_share,
            Unit::Fraction,
            0.05,
        ),
        t(
            "§6.2.1",
            "top-3 unrouted-signed holders",
            0.701,
            fig5.top3_share,
            Unit::Fraction,
            0.08,
        ),
        // Figure 6.
        t(
            "Fig 6",
            "unallocated listings",
            40.0,
            fig6.total() as f64,
            Unit::Count,
            0.0,
        ),
        t(
            "Fig 6",
            "LACNIC cluster",
            19.0,
            *fig6.per_rir.get(&Rir::Lacnic).unwrap_or(&0) as f64,
            Unit::Count,
            0.0,
        ),
        t(
            "Fig 6",
            "AFRINIC cluster",
            12.0,
            *fig6.per_rir.get(&Rir::Afrinic).unwrap_or(&0) as f64,
            Unit::Count,
            0.0,
        ),
        // Table 2.
        t(
            "App A",
            "records w/ one keyword",
            0.90,
            one_kw,
            Unit::Fraction,
            0.04,
        ),
        t(
            "App A",
            "records w/ no keyword",
            0.073,
            none_kw,
            Unit::Fraction,
            0.04,
        ),
        // §4.1.
        t(
            "§4.1",
            "MH prefixes deallocated",
            0.174,
            s4.mh_dealloc_fraction(),
            Unit::Fraction,
            0.08,
        ),
        t(
            "§4.1",
            "removed prefixes deallocated",
            0.088,
            s4.removed_dealloc_fraction(),
            Unit::Fraction,
            0.05,
        ),
        // §6.2.
        t(
            "§6.2.1",
            "operator-AS0 stories",
            1.0,
            s6.operator_as0.len() as f64,
            Unit::Count,
            0.0,
        ),
        t(
            "§6.2.2",
            "peers free of AS0-TAL-invalid routes",
            0.0,
            s6.per_peer.iter().filter(|p| p.filterable == 0).count() as f64,
            Unit::Count,
            0.0,
        ),
    ]
}

/// Render the scorecard as a table.
pub fn render(targets: &[Target]) -> String {
    let mut t = TextTable::new(vec![
        "Source", "Quantity", "Paper", "Measured", "Band", "OK",
    ]);
    for target in targets {
        let fmt_val = |v: f64| match target.unit {
            Unit::Count => format!("{v:.0}"),
            Unit::Fraction => format!("{:.1}%", v * 100.0),
            Unit::Slash8 => format!("{v:.2} /8s"),
        };
        t.row(vec![
            target.source.to_owned(),
            target.quantity.to_owned(),
            fmt_val(target.paper),
            fmt_val(target.measured),
            format!("±{}", fmt_val(target.tolerance)),
            if target.in_band() {
                "✓".to_owned()
            } else {
                "✗".to_owned()
            },
        ]);
    }
    let ok = targets.iter().filter(|t| t.in_band()).count();
    format!(
        "{}{} of {} targets in band\n",
        t.render(),
        ok,
        targets.len()
    )
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}: paper {} measured {} (±{})",
            self.source, self.quantity, self.paper, self.measured, self.tolerance
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testutil;

    #[test]
    fn scorecard_runs_on_any_study() {
        // The small world is out of band for most population targets
        // (deliberately tiny), but the scorecard must compute and render.
        let targets = scorecard(testutil::study());
        assert!(targets.len() >= 35);
        let rendered = render(&targets);
        assert!(rendered.contains("Paper"));
        assert!(rendered.contains("targets in band"));
        // Structural recoveries hold even at small scale.
        let by_name = |q: &str| {
            targets
                .iter()
                .find(|t| t.quantity == q)
                .unwrap_or_else(|| panic!("{q} missing"))
        };
        assert!(by_name("DROP-filtering peers").measured > 0.0);
        assert!(by_name("attacker-controlled ROAs").in_band());
        assert!(by_name("operator-AS0 stories").in_band());
        assert!(by_name("unallocated w/ route object").in_band());
    }

    #[test]
    fn band_logic() {
        let t = Target {
            source: "x",
            quantity: "y",
            paper: 10.0,
            measured: 10.5,
            unit: Unit::Count,
            tolerance: 1.0,
        };
        assert!(t.in_band());
        let t = Target {
            measured: 11.5,
            ..t
        };
        assert!(!t.in_band());
    }
}

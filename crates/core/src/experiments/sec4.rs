//! §4.1: RIR deallocation after DROP listing.
//!
//! Two statistics:
//!
//! * the fraction of malicious-hosting prefixes allocated at listing time
//!   that the RIR deallocated by the end of the study (paper: 17.4%);
//! * the fraction of removed-from-DROP prefixes that were deallocated
//!   (paper: 8.8%), and of those, how many Spamhaus removed within a week
//!   of the RIR's deallocation (paper: half).

use std::fmt;

use droplens_drop::Category;
use droplens_net::{Date, Ipv4Prefix};

use crate::report::pct;
use crate::Study;

/// One detected deallocation.
#[derive(Debug, Clone, Copy)]
pub struct Dealloc {
    /// The listed prefix.
    pub prefix: Ipv4Prefix,
    /// Listing day.
    pub listed: Date,
    /// First stats snapshot showing it gone.
    pub deallocated: Date,
    /// Spamhaus' removal day, if removed.
    pub removed: Option<Date>,
}

/// The §4.1 statistics.
#[derive(Debug, Clone)]
pub struct Sec4 {
    /// Malicious-hosting listings allocated at listing time.
    pub mh_total: usize,
    /// Of those, deallocated before study end.
    pub mh_deallocated: usize,
    /// Removed-from-DROP listings (allocated at listing).
    pub removed_total: usize,
    /// Of those, deallocated before study end.
    pub removed_deallocated: Vec<Dealloc>,
    /// Of the deallocated-and-removed: Spamhaus removal within 7 days
    /// after the deallocation.
    pub removed_within_week_of_dealloc: usize,
}

impl Sec4 {
    /// The 17.4% statistic.
    pub fn mh_dealloc_fraction(&self) -> f64 {
        if self.mh_total == 0 {
            0.0
        } else {
            self.mh_deallocated as f64 / self.mh_total as f64
        }
    }

    /// The 8.8% statistic.
    pub fn removed_dealloc_fraction(&self) -> f64 {
        if self.removed_total == 0 {
            0.0
        } else {
            self.removed_deallocated.len() as f64 / self.removed_total as f64
        }
    }

    /// The "half within a week" statistic.
    pub fn week_fraction(&self) -> f64 {
        if self.removed_deallocated.is_empty() {
            0.0
        } else {
            self.removed_within_week_of_dealloc as f64 / self.removed_deallocated.len() as f64
        }
    }
}

/// Compute the §4.1 statistics.
pub fn compute(study: &Study) -> Sec4 {
    let end = study.config.window.last_or_start();

    let mut mh_total = 0;
    let mut mh_deallocated = 0;
    for e in study.without_incidents() {
        if !e.has(Category::MaliciousHosting) || !e.allocated_at_listing {
            continue;
        }
        mh_total += 1;
        if study
            .rir
            .deallocation_date(&e.prefix(), e.entry.added, end)
            .is_some()
        {
            mh_deallocated += 1;
        }
    }

    let mut removed_total = 0;
    let mut removed_deallocated = Vec::new();
    let mut within_week = 0;
    for e in study.without_incidents() {
        let Some(removed) = e.entry.removed else {
            continue;
        };
        if !e.allocated_at_listing {
            continue;
        }
        removed_total += 1;
        if let Some(dd) = study.rir.deallocation_date(&e.prefix(), e.entry.added, end) {
            removed_deallocated.push(Dealloc {
                prefix: e.prefix(),
                listed: e.entry.added,
                deallocated: dd,
                removed: Some(removed),
            });
            if removed >= dd && removed - dd <= 7 {
                within_week += 1;
            }
        }
    }

    Sec4 {
        mh_total,
        mh_deallocated,
        removed_total,
        removed_deallocated,
        removed_within_week_of_dealloc: within_week,
    }
}

impl fmt::Display for Sec4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Section 4.1: deallocation after listing")?;
        writeln!(
            f,
            "  malicious hosting deallocated: {} of {} ({})",
            self.mh_deallocated,
            self.mh_total,
            pct(self.mh_dealloc_fraction()),
        )?;
        writeln!(
            f,
            "  removed-from-DROP deallocated: {} of {} ({})",
            self.removed_deallocated.len(),
            self.removed_total,
            pct(self.removed_dealloc_fraction()),
        )?;
        writeln!(
            f,
            "  of those, Spamhaus removed within a week of the deallocation: {} ({})",
            self.removed_within_week_of_dealloc,
            pct(self.week_fraction()),
        )
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code: panics are failures
mod tests {
    use super::*;
    use crate::experiments::testutil;

    #[test]
    fn mh_dealloc_rate_near_config() {
        let s = compute(testutil::study());
        assert!(s.mh_total > 0);
        // Config rate is 17.4%; the small world has few MH prefixes, so
        // just require the signal exists and is a minority.
        assert!(s.mh_dealloc_fraction() < 0.6);
    }

    #[test]
    fn removed_dealloc_detected_with_day_precision() {
        let s = compute(testutil::study());
        let world = testutil::world();
        // Cross-check against ground truth: every truth deallocation of a
        // removed prefix is found.
        let truth_deallocs: Vec<_> = world
            .truth
            .listed
            .iter()
            .filter(|t| t.removed.is_some() && t.deallocated.is_some())
            .collect();
        assert_eq!(s.removed_deallocated.len(), truth_deallocs.len());
        for d in &s.removed_deallocated {
            let t = world.truth.for_prefix(&d.prefix).unwrap();
            assert_eq!(Some(d.deallocated), t.deallocated, "{}", d.prefix);
        }
    }

    #[test]
    fn week_fraction_is_roughly_half_when_populated() {
        let s = compute(testutil::study());
        if s.removed_deallocated.len() >= 4 {
            assert!(
                s.week_fraction() > 0.2 && s.week_fraction() < 0.8,
                "{}",
                s.week_fraction()
            );
        }
    }

    #[test]
    fn renders() {
        let s = compute(testutil::study());
        assert!(s.to_string().contains("deallocation after listing"));
    }
}

//! §6.2: AS0 at the operator and RIR level.
//!
//! * The operator-AS0 story: the one DROP prefix whose holder published an
//!   AS0 ROA while listed (paper: 45.65.112.0/22 — listed 2020-01-28,
//!   AS0-signed 2021-05-05, removed 2021-06-16).
//! * The RIR-AS0 reality check (§6.2.2): for each full-table peer at
//!   study end, how many of its routed prefixes would be rejected if it
//!   validated against the APNIC/LACNIC AS0 TALs. The paper found ≈30 per
//!   peer — i.e. **no** peer actually filters on those TALs.

use std::fmt;

use droplens_bgp::PeerId;
use droplens_net::{Date, Ipv4Prefix};
use droplens_rpki::{RovOutcome, Tal};

use crate::Study;

/// The operator-AS0 story, when found.
#[derive(Debug, Clone, Copy)]
pub struct OperatorAs0 {
    /// The protected prefix.
    pub prefix: Ipv4Prefix,
    /// Listing day.
    pub listed: Date,
    /// Day the operator's AS0 ROA appeared.
    pub as0_signed: Date,
    /// Day Spamhaus removed the prefix, if it did.
    pub removed: Option<Date>,
}

/// Per-peer count of routed prefixes an AS0-TAL validator would reject.
#[derive(Debug, Clone, Copy)]
pub struct PeerAs0Count {
    /// The peer.
    pub peer: PeerId,
    /// Routes in its table at study end that the AS0 TALs invalidate.
    pub filterable: usize,
}

/// The §6.2 results.
#[derive(Debug, Clone)]
pub struct Sec6 {
    /// Operator-AS0 stories found among the listings.
    pub operator_as0: Vec<OperatorAs0>,
    /// Per-peer AS0-TAL-filterable counts at study end.
    pub per_peer: Vec<PeerAs0Count>,
}

impl Sec6 {
    /// True when every peer still carries AS0-TAL-invalid routes — the
    /// paper's "no evidence anyone filters on those TALs".
    pub fn nobody_filters_as0_tals(&self) -> bool {
        !self.per_peer.is_empty() && self.per_peer.iter().all(|p| p.filterable > 0)
    }

    /// Smallest per-peer filterable count.
    pub fn min_filterable(&self) -> usize {
        self.per_peer
            .iter()
            .map(|p| p.filterable)
            .min()
            .unwrap_or(0)
    }

    /// Largest per-peer filterable count.
    pub fn max_filterable(&self) -> usize {
        self.per_peer
            .iter()
            .map(|p| p.filterable)
            .max()
            .unwrap_or(0)
    }
}

/// Compute the §6.2 results.
pub fn compute(study: &Study) -> Sec6 {
    let end = study.config.window.last_or_start();

    // Operator AS0: a production-TAL AS0 ROA covering a listed prefix,
    // created during the listing episode.
    let mut operator_as0 = Vec::new();
    for e in &study.entries {
        let listed = e.entry.added;
        let until = e.entry.removed.unwrap_or(end);
        let as0_signing = study
            .roa
            .signings_in_window(&e.prefix(), listed, until, &Tal::PRODUCTION)
            .into_iter()
            .filter(|r| r.roa.is_as0())
            .min_by_key(|r| r.created);
        if let Some(rec) = as0_signing {
            operator_as0.push(OperatorAs0 {
                prefix: e.prefix(),
                listed,
                as0_signed: rec.created,
                removed: e.entry.removed,
            });
        }
    }

    // §6.2.2: per peer, count the routes the AS0 TALs would reject. A
    // route is rejected when the AS0 TAL set alone covers it (any AS0 ROA
    // makes it Invalid) — the production TALs never rescue squatted pool
    // space.
    // Whether a prefix is rejected is peer-independent (origins and ROV
    // validation aggregate over all peers), so decide it once per prefix
    // and only then ask which peers carry the route — instead of redoing
    // the validation inside the peer loop.
    let as0_tals = [Tal::ApnicAs0, Tal::LacnicAs0];
    let mut filterable: std::collections::BTreeMap<PeerId, usize> =
        study.peers.iter().map(|p| (p.id, 0)).collect();
    for prefix in study.bgp.prefixes() {
        if !study.bgp.observed_any(&prefix, end) {
            continue;
        }
        let origins = study.bgp.origins_at(&prefix, end);
        let rejected = origins.iter().any(|&origin| {
            study.roa.validate_at(&prefix, origin, end, &as0_tals) == RovOutcome::Invalid
                && study
                    .roa
                    .validate_at(&prefix, origin, end, &Tal::PRODUCTION)
                    != RovOutcome::Valid
        });
        if !rejected {
            continue;
        }
        for peer in study.peers.iter() {
            if study.bgp.observed_by(&prefix, peer.id, end) {
                if let Some(n) = filterable.get_mut(&peer.id) {
                    *n += 1;
                }
            }
        }
    }
    let per_peer = study
        .peers
        .iter()
        .map(|p| PeerAs0Count {
            peer: p.id,
            filterable: filterable[&p.id],
        })
        .collect();

    Sec6 {
        operator_as0,
        per_peer,
    }
}

impl fmt::Display for Sec6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Section 6.2: AS0 at operator and RIR level")?;
        if self.operator_as0.is_empty() {
            writeln!(f, "  no operator-AS0 stories found")?;
        }
        for s in &self.operator_as0 {
            writeln!(
                f,
                "  operator AS0: {} listed {}, AS0-signed {}, removed {}",
                s.prefix,
                s.listed,
                s.as0_signed,
                s.removed
                    .map(|d| d.to_string())
                    .unwrap_or_else(|| "never".into()),
            )?;
        }
        writeln!(
            f,
            "  AS0-TAL-filterable routes per peer at study end: min={} max={}",
            self.min_filterable(),
            self.max_filterable(),
        )?;
        writeln!(
            f,
            "  => {}",
            if self.nobody_filters_as0_tals() {
                "every peer carries AS0-TAL-invalid routes: nobody filters on those TALs"
            } else {
                "some peer carries no AS0-TAL-invalid routes (possible AS0-TAL filtering)"
            }
        )
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code: panics are failures
mod tests {
    use super::*;
    use crate::experiments::testutil;

    #[test]
    fn finds_the_operator_as0_story() {
        let s = compute(testutil::study());
        let truth = testutil::world().truth.operator_as0_prefix.unwrap();
        assert_eq!(s.operator_as0.len(), 1);
        let story = &s.operator_as0[0];
        assert_eq!(story.prefix, truth);
        assert_eq!(story.listed.to_string(), "2020-01-28");
        assert_eq!(story.as0_signed.to_string(), "2021-05-05");
        assert_eq!(story.removed.unwrap().to_string(), "2021-06-16");
    }

    #[test]
    fn every_peer_carries_as0_tal_invalid_routes() {
        let s = compute(testutil::study());
        assert!(s.nobody_filters_as0_tals(), "{s}");
        // The filterable sets come from squats on APNIC/LACNIC pool space.
        assert!(s.min_filterable() >= 1, "min {}", s.min_filterable());
        assert!(s.max_filterable() >= s.min_filterable());
    }

    #[test]
    fn normal_peers_see_more_filterable_than_drop_filtering_peers() {
        // DROP-filtering peers drop listed squats, so they carry fewer
        // AS0-TAL-invalid routes (only the never-listed squats).
        let s = compute(testutil::study());
        let filtering = &testutil::world().truth.filtering_peers;
        let normal_min = s
            .per_peer
            .iter()
            .filter(|p| !filtering.contains(&p.peer))
            .map(|p| p.filterable)
            .min()
            .unwrap();
        let filtering_max = s
            .per_peer
            .iter()
            .filter(|p| filtering.contains(&p.peer))
            .map(|p| p.filterable)
            .max()
            .unwrap();
        assert!(
            normal_min >= filtering_max,
            "{normal_min} < {filtering_max}"
        );
    }

    #[test]
    fn renders() {
        let s = compute(testutil::study());
        let text = s.to_string();
        assert!(text.contains("operator AS0"));
        assert!(text.contains("nobody filters"));
    }
}

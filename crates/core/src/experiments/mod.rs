//! One module per paper artifact. Every module exposes a
//! `compute(&Study) -> …Result` function returning a typed result that
//! implements `Display`, rendering the same rows/series the paper
//! reports.

pub mod ext_maxlen;
pub mod ext_profiles;
pub mod ext_rov;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod sec4;
pub mod sec5;
pub mod sec6;
pub mod summary;
pub mod table1;
pub mod table2;

#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::OnceLock;

    use droplens_synth::{World, WorldConfig};

    use crate::Study;

    /// The shared small-world study used by every experiment test. Built
    /// once: world generation plus index construction dominates test
    /// runtime otherwise.
    pub(crate) fn study() -> &'static Study {
        static STUDY: OnceLock<Study> = OnceLock::new();
        STUDY.get_or_init(|| Study::from_world(world()))
    }

    /// The world behind [`study`], for ground-truth comparisons.
    pub(crate) fn world() -> &'static World {
        static WORLD: OnceLock<World> = OnceLock::new();
        WORLD.get_or_init(|| World::generate(42, &WorldConfig::small()))
    }
}

//! Extension: the maxLength sub-prefix hijack surface.
//!
//! §2.3 of the paper recounts Gilad et al. (CoNEXT 2017): a ROA whose
//! maxLength exceeds its prefix length authorizes more-specific
//! announcements the holder may never make — an attacker who forges the
//! authorized origin can announce those unused more-specifics and win
//! best-path selection, all while remaining **RPKI-valid** (84% of
//! maxLength-using ROAs were vulnerable in 2017, and the IETF has since
//! recommended against the attribute). This experiment measures that
//! surface in the archive at study end.
//!
//! A maxLength ROA is *vulnerable* when some authorized more-specific
//! length has announcements the holder does not make — conservatively, we
//! flag ROAs whose covered space is not fully announced at the maximum
//! authorized specificity.

use std::fmt;

use droplens_net::{AddressSpace, Date, PrefixSet};
use droplens_rpki::Tal;

use crate::report::pct;
use crate::Study;

/// One vulnerable ROA.
#[derive(Debug, Clone)]
pub struct VulnerableRoa {
    /// The ROA's prefix.
    pub prefix: droplens_net::Ipv4Prefix,
    /// Its maxLength.
    pub max_length: u8,
    /// Space an attacker could announce as forged-origin more-specifics
    /// without colliding with the holder's own announcements.
    pub exposed: AddressSpace,
}

/// The computed extension experiment.
#[derive(Debug, Clone)]
pub struct ExtMaxLen {
    /// Evaluation day (study end).
    pub date: Date,
    /// Non-AS0 production ROAs active on the evaluation day.
    pub total_roas: usize,
    /// Of those, ROAs carrying a maxLength longer than the prefix.
    pub maxlen_roas: usize,
    /// Of those, vulnerable ones (some authorized space unannounced).
    pub vulnerable: Vec<VulnerableRoa>,
    /// Space exposed to RPKI-valid forged-origin sub-prefix hijacks.
    pub exposed_space: AddressSpace,
}

impl ExtMaxLen {
    /// The Gilad-et-al statistic: vulnerable fraction of maxLength ROAs.
    pub fn vulnerable_fraction(&self) -> f64 {
        if self.maxlen_roas == 0 {
            0.0
        } else {
            self.vulnerable.len() as f64 / self.maxlen_roas as f64
        }
    }
}

/// Compute the maxLength surface at study end.
pub fn compute(study: &Study) -> ExtMaxLen {
    let date = study.config.window.last_or_start();
    let mut total = 0usize;
    let mut maxlen = 0usize;
    let mut vulnerable = Vec::new();
    let mut exposed_space = AddressSpace::ZERO;

    for rec in study.roa.active_on(date, &Tal::PRODUCTION) {
        let roa = &rec.roa;
        if roa.is_as0() {
            continue;
        }
        total += 1;
        if !roa.vulnerable_to_subprefix_hijack() {
            continue;
        }
        maxlen += 1;
        // Space the holder actually announces inside the ROA.
        let mut announced = PrefixSet::new();
        if study.bgp.observed_any(&roa.prefix, date) {
            announced.insert(roa.prefix);
        }
        for p in study.bgp.prefixes_covered_by(&roa.prefix) {
            if study.bgp.observed_any(&p, date) {
                announced.insert(p);
            }
        }
        let mut covered = PrefixSet::new();
        covered.insert(roa.prefix);
        let exposed = covered.difference(&announced).space();
        if !exposed.is_zero() {
            exposed_space += exposed;
            vulnerable.push(VulnerableRoa {
                prefix: roa.prefix,
                max_length: roa.effective_max_length(),
                exposed,
            });
        }
    }
    vulnerable.sort_by(|a, b| b.exposed.cmp(&a.exposed).then(a.prefix.cmp(&b.prefix)));

    ExtMaxLen {
        date,
        total_roas: total,
        maxlen_roas: maxlen,
        vulnerable,
        exposed_space,
    }
}

impl fmt::Display for ExtMaxLen {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Extension: maxLength sub-prefix hijack surface at {}",
            self.date
        )?;
        writeln!(
            f,
            "  ROAs: {} total; {} use maxLength > prefix ({}); {} vulnerable ({} of maxLength users)",
            self.total_roas,
            self.maxlen_roas,
            pct(self.maxlen_roas as f64 / self.total_roas.max(1) as f64),
            self.vulnerable.len(),
            pct(self.vulnerable_fraction()),
        )?;
        writeln!(
            f,
            "  space exposed to RPKI-valid forged-origin sub-prefix hijacks: {}",
            self.exposed_space
        )?;
        for v in self.vulnerable.iter().take(5) {
            writeln!(
                f,
                "    {} (max /{}) exposes {}",
                v.prefix, v.max_length, v.exposed
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testutil;

    #[test]
    fn maxlength_users_exist_and_some_are_vulnerable() {
        let e = compute(testutil::study());
        assert!(e.total_roas > 0);
        assert!(e.maxlen_roas > 0, "no maxLength ROAs generated");
        assert!(e.maxlen_roas < e.total_roas);
    }

    #[test]
    fn unrouted_maxlength_roas_expose_their_whole_space() {
        let e = compute(testutil::study());
        for v in &e.vulnerable {
            assert!(v.max_length > v.prefix.len());
            assert!(v.exposed.addresses() <= v.prefix.address_count());
        }
        // Exposed space sums per-ROA exposures.
        let total: u64 = e.vulnerable.iter().map(|v| v.exposed.addresses()).sum();
        assert_eq!(total, e.exposed_space.addresses());
    }

    #[test]
    fn fully_announced_roas_are_not_flagged() {
        // Background signers announce their whole block, so the flagged
        // set must be a strict subset of maxLength users... unless the
        // block was withdrawn (dark) — either way the fraction is < 1.
        let e = compute(testutil::study());
        assert!(e.vulnerable_fraction() <= 1.0);
    }

    #[test]
    fn renders() {
        let e = compute(testutil::study());
        assert!(e.to_string().contains("maxLength"));
    }
}

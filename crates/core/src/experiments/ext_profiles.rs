//! Extension: attacker-AS dossiers.
//!
//! §2.1 of the paper recounts Testart et al. (IMC 2019), who profiled
//! *serial hijackers* — ASes that repeatedly misbehave — by their routing
//! footprint. This extension builds the equivalent dossiers from the
//! study's own data: for every ASN named as malicious in an SBL record,
//! how many listings it is behind, how much space, over which registries,
//! how long its announcements last compared to the background, and
//! whether it laundered its announcements through forged IRR objects.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use droplens_net::{AddressSpace, Asn};
use droplens_rir::Rir;

use crate::report::TextTable;
use crate::Study;

/// One ASN's dossier.
#[derive(Debug, Clone)]
pub struct AsnProfile {
    /// The profiled ASN.
    pub asn: Asn,
    /// Listings whose SBL record names it.
    pub listings: usize,
    /// Space across those listings.
    pub space: AddressSpace,
    /// Registries whose space it touched.
    pub regions: BTreeSet<Rir>,
    /// Listings with an IRR route object registered under this ASN.
    pub forged_irr: usize,
    /// Median days its announcements stayed up (announcement start →
    /// withdrawal, capped at the study horizon).
    pub median_announcement_days: i32,
    /// Listings withdrawn within 30 days of listing.
    pub withdrew_quickly: usize,
}

/// The computed dossiers.
#[derive(Debug, Clone)]
pub struct ExtProfiles {
    /// Per-ASN dossiers, most listings first.
    pub profiles: Vec<AsnProfile>,
    /// ASNs behind more than one listing — the serial population.
    pub serial_asns: usize,
    /// Share of ASN-labeled listings attributable to serial ASNs.
    pub serial_listing_share: f64,
}

/// Compute the dossiers.
pub fn compute(study: &Study) -> ExtProfiles {
    struct Acc {
        listings: usize,
        space: AddressSpace,
        regions: BTreeSet<Rir>,
        forged: usize,
        durations: Vec<i32>,
        quick: usize,
    }
    let horizon = study.horizon();
    let mut by_asn: BTreeMap<Asn, Acc> = BTreeMap::new();

    for e in study.without_incidents() {
        let Some(asn) = e.asns.first().copied() else {
            continue;
        };
        let acc = by_asn.entry(asn).or_insert_with(|| Acc {
            listings: 0,
            space: AddressSpace::ZERO,
            regions: BTreeSet::new(),
            forged: 0,
            durations: Vec::new(),
            quick: 0,
        });
        acc.listings += 1;
        acc.space += e.space();
        if let Some(rir) = e.rir {
            acc.regions.insert(rir);
        }
        if study
            .irr
            .for_prefix_or_more_specific(&e.prefix())
            .iter()
            .any(|o| o.object.origin == asn)
        {
            acc.forged += 1;
        }
        // Announcement longevity: the run containing (or nearest to) the
        // listing, aggregated over peers.
        let listed = e.entry.added;
        let mut start = None;
        let mut end = None;
        for peer in study.peers.iter() {
            for iv in study.bgp.intervals(&e.prefix(), peer.id) {
                if iv.start <= listed || iv.contains(listed) {
                    start = Some(start.map_or(iv.start, |s: droplens_net::Date| s.min(iv.start)));
                    let e_end = iv.end.unwrap_or(horizon);
                    end = Some(end.map_or(e_end, |x: droplens_net::Date| x.max(e_end)));
                }
            }
        }
        if let (Some(s), Some(x)) = (start, end) {
            acc.durations.push((x - s).max(0));
        }
        if crate::experiments::fig2::withdrawn_within(study, &e.prefix(), listed, 30) {
            acc.quick += 1;
        }
    }

    let mut profiles: Vec<AsnProfile> = by_asn
        .into_iter()
        .map(|(asn, mut acc)| {
            acc.durations.sort_unstable();
            let median = acc
                .durations
                .get(acc.durations.len() / 2)
                .copied()
                .unwrap_or(0);
            AsnProfile {
                asn,
                listings: acc.listings,
                space: acc.space,
                regions: acc.regions,
                forged_irr: acc.forged,
                median_announcement_days: median,
                withdrew_quickly: acc.quick,
            }
        })
        .collect();
    profiles.sort_by(|a, b| b.listings.cmp(&a.listings).then(a.asn.cmp(&b.asn)));

    let serial: Vec<&AsnProfile> = profiles.iter().filter(|p| p.listings > 1).collect();
    let serial_listings: usize = serial.iter().map(|p| p.listings).sum();
    let total_listings: usize = profiles.iter().map(|p| p.listings).sum();
    ExtProfiles {
        serial_asns: serial.len(),
        serial_listing_share: if total_listings == 0 {
            0.0
        } else {
            serial_listings as f64 / total_listings as f64
        },
        profiles,
    }
}

impl fmt::Display for ExtProfiles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Extension: attacker-AS dossiers ({} ASNs; {} serial, covering {:.1}% of labeled listings)",
            self.profiles.len(),
            self.serial_asns,
            self.serial_listing_share * 100.0,
        )?;
        let mut t = TextTable::new(vec![
            "ASN",
            "Listings",
            "Space",
            "Regions",
            "Forged IRR",
            "Median up-days",
            "Quick exits",
        ]);
        for p in self.profiles.iter().take(10) {
            t.row(vec![
                p.asn.to_string(),
                p.listings.to_string(),
                p.space.to_string(),
                p.regions.len().to_string(),
                p.forged_irr.to_string(),
                p.median_announcement_days.to_string(),
                p.withdrew_quickly.to_string(),
            ]);
        }
        f.write_str(&t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testutil;

    #[test]
    fn every_labeled_asn_gets_a_dossier() {
        let e = compute(testutil::study());
        let study = testutil::study();
        let labeled: BTreeSet<Asn> = study
            .without_incidents()
            .filter_map(|e| e.asns.first().copied())
            .collect();
        let profiled: BTreeSet<Asn> = e.profiles.iter().map(|p| p.asn).collect();
        assert_eq!(profiled, labeled);
    }

    #[test]
    fn forger_asns_are_serial_with_irr_fingerprints() {
        let e = compute(testutil::study());
        let world = testutil::world();
        // The 13 defunct forger ASNs split the forged listings between
        // them, so they show up as serial with forged-IRR counts.
        for asn in &world.truth.forger_asns {
            if let Some(p) = e.profiles.iter().find(|p| p.asn == *asn) {
                assert!(p.forged_irr > 0, "{asn}: no forged-IRR fingerprint");
            }
        }
        assert!(e.serial_asns > 0);
    }

    #[test]
    fn listing_counts_are_consistent() {
        let e = compute(testutil::study());
        let total: usize = e.profiles.iter().map(|p| p.listings).sum();
        let study = testutil::study();
        let labeled = study
            .without_incidents()
            .filter(|e| !e.asns.is_empty())
            .count();
        assert_eq!(total, labeled);
        assert!(e.serial_listing_share <= 1.0);
    }

    #[test]
    fn renders() {
        let e = compute(testutil::study());
        let s = e.to_string();
        assert!(s.contains("dossiers"));
        assert!(s.contains("Forged IRR"));
    }
}

//! Figure 6: unallocated address space appearing on DROP vs the RIRs'
//! AS0 policies.
//!
//! The timeline of unallocated listings (paper: 40, clustered — LACNIC 19
//! and AFRINIC 12), with each RIR's AS0 policy implementation date, and
//! the observation that listings continued after the policies landed
//! (the AS0 TALs are advisory and unconfigured by default).

use std::collections::BTreeMap;
use std::fmt;

use droplens_drop::Category;
use droplens_net::{Date, Ipv4Prefix};
use droplens_rir::Rir;

use crate::Study;

/// One unallocated listing event.
#[derive(Debug, Clone, Copy)]
pub struct UaEvent {
    /// Listing day.
    pub date: Date,
    /// The squatted prefix.
    pub prefix: Ipv4Prefix,
    /// The RIR whose pool the space belongs to.
    pub rir: Option<Rir>,
    /// Whether the managing RIR had an AS0 policy in force on the
    /// listing day.
    pub after_as0_policy: bool,
}

/// The computed figure.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// All unallocated listings, chronological.
    pub events: Vec<UaEvent>,
    /// Listings per RIR.
    pub per_rir: BTreeMap<Rir, usize>,
    /// Listings per RIR that happened *after* that RIR's AS0 policy.
    pub after_policy_per_rir: BTreeMap<Rir, usize>,
}

impl Fig6 {
    /// Total unallocated listings (paper: 40).
    pub fn total(&self) -> usize {
        self.events.len()
    }
}

/// Compute Figure 6.
pub fn compute(study: &Study) -> Fig6 {
    let mut events = Vec::new();
    let mut per_rir: BTreeMap<Rir, usize> = BTreeMap::new();
    let mut after: BTreeMap<Rir, usize> = BTreeMap::new();
    for e in study.with_category(Category::Unallocated) {
        let date = e.entry.added;
        let rir = e.rir;
        let after_as0_policy = rir
            .and_then(|r| r.as0_policy_date())
            .is_some_and(|policy| date >= policy);
        events.push(UaEvent {
            date,
            prefix: e.prefix(),
            rir,
            after_as0_policy,
        });
        if let Some(r) = rir {
            *per_rir.entry(r).or_insert(0) += 1;
            if after_as0_policy {
                *after.entry(r).or_insert(0) += 1;
            }
        }
    }
    events.sort_by_key(|e| (e.date, e.prefix));
    Fig6 {
        events,
        per_rir,
        after_policy_per_rir: after,
    }
}

impl fmt::Display for Fig6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 6: {} unallocated prefixes appeared on DROP",
            self.total()
        )?;
        for rir in Rir::ALL {
            let n = self.per_rir.get(&rir).copied().unwrap_or(0);
            let after = self.after_policy_per_rir.get(&rir).copied().unwrap_or(0);
            let policy = rir
                .as0_policy_date()
                .map(|d| d.to_string())
                .unwrap_or_else(|| "none".to_owned());
            writeln!(
                f,
                "  {:<9} {n:>3} listings (AS0 policy: {policy}; {after} after policy)",
                rir.display_name()
            )?;
        }
        for e in &self.events {
            writeln!(
                f,
                "  {}  {:<18} {}{}",
                e.date,
                e.prefix.to_string(),
                e.rir.map(|r| r.display_name()).unwrap_or("?"),
                if e.after_as0_policy {
                    "  [after AS0 policy]"
                } else {
                    ""
                },
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testutil;
    use droplens_synth::WorldConfig;

    #[test]
    fn totals_and_clusters_match_config() {
        let fig = compute(testutil::study());
        let cfg = WorldConfig::small();
        assert_eq!(fig.total(), cfg.mix.ua);
        for (i, rir) in Rir::ALL.into_iter().enumerate() {
            assert_eq!(
                fig.per_rir.get(&rir).copied().unwrap_or(0),
                cfg.ua_per_rir[i],
                "{rir}"
            );
        }
    }

    #[test]
    fn listings_continue_after_as0_policies() {
        let fig = compute(testutil::study());
        // LACNIC's second cluster postdates its 2021-06-23 policy.
        assert!(
            fig.after_policy_per_rir
                .get(&Rir::Lacnic)
                .copied()
                .unwrap_or(0)
                > 0,
            "{:?}",
            fig.after_policy_per_rir
        );
        // RIRs without a policy never count "after policy".
        assert_eq!(fig.after_policy_per_rir.get(&Rir::Arin), None);
        assert_eq!(fig.after_policy_per_rir.get(&Rir::RipeNcc), None);
    }

    #[test]
    fn events_are_chronological() {
        let fig = compute(testutil::study());
        assert!(fig.events.windows(2).all(|p| p[0].date <= p[1].date));
    }

    #[test]
    fn renders() {
        let fig = compute(testutil::study());
        let s = fig.to_string();
        assert!(s.contains("unallocated prefixes appeared on DROP"));
        assert!(s.contains("2021-06-23")); // LACNIC policy date
    }
}

//! Figure 3: lead time from forged-IRR-object creation to BGP and DROP
//! appearance.
//!
//! For every hijack whose route object origin matches the labeled
//! hijacker ASN, the days between the object's creation and (a) the
//! prefix's first BGP announcement, (b) its DROP listing. The paper: all
//! but 2 prefixes appeared in BGP less than a week after the IRR record;
//! the 2 outliers had been announced over a year *before* the record.

use std::fmt;

use droplens_net::Ipv4Prefix;

use crate::report::pct;
use crate::Study;

/// One matched prefix's lead times.
#[derive(Debug, Clone, Copy)]
pub struct LeadTime {
    /// The prefix.
    pub prefix: Ipv4Prefix,
    /// Days from IRR creation to first BGP announcement (negative when
    /// the prefix was announced before the record existed).
    pub to_bgp: i32,
    /// Days from IRR creation to DROP listing.
    pub to_drop: i32,
}

/// The computed figure.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// One row per forged-IRR prefix, sorted by `to_bgp`.
    pub rows: Vec<LeadTime>,
}

impl Fig3 {
    /// Prefixes announced in BGP within `days` of IRR creation (among
    /// those announced after the record; the CDF body).
    pub fn bgp_within(&self, days: i32) -> usize {
        self.rows
            .iter()
            .filter(|r| r.to_bgp >= 0 && r.to_bgp <= days)
            .count()
    }

    /// Prefixes announced long before the record existed (the outliers).
    pub fn announced_before_record(&self) -> usize {
        self.rows.iter().filter(|r| r.to_bgp < 0).count()
    }
}

/// Compute Figure 3.
pub fn compute(study: &Study) -> Fig3 {
    let mut rows = Vec::new();
    for e in study.without_incidents() {
        let Some(asn) = e.hijacker_asn() else {
            continue;
        };
        // The earliest object generation matching the hijacker ASN.
        let Some(object) = study
            .irr
            .for_prefix_or_more_specific(&e.prefix())
            .into_iter()
            .filter(|o| o.object.origin == asn)
            .min_by_key(|o| o.created)
        else {
            continue;
        };
        let Some(first_bgp) = study.bgp.first_announced(&e.prefix()) else {
            continue;
        };
        rows.push(LeadTime {
            prefix: e.prefix(),
            to_bgp: first_bgp - object.created,
            to_drop: e.entry.added - object.created,
        });
    }
    rows.sort_by_key(|r| r.to_bgp);
    Fig3 { rows }
}

impl fmt::Display for Fig3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.rows.len();
        writeln!(f, "Figure 3: {} prefixes with forged IRR records", n)?;
        if n == 0 {
            return Ok(());
        }
        for days in [7, 30, 100, 300] {
            writeln!(
                f,
                "  in BGP within {days:>3} days of IRR creation: {} ({})",
                self.bgp_within(days),
                pct(self.bgp_within(days) as f64 / n as f64),
            )?;
        }
        writeln!(
            f,
            "  announced >1yr before the IRR record: {}",
            self.announced_before_record()
        )?;
        let drop_median = {
            let mut d: Vec<i32> = self.rows.iter().map(|r| r.to_drop).collect();
            d.sort_unstable();
            d[d.len() / 2]
        };
        writeln!(
            f,
            "  median days from IRR creation to DROP listing: {drop_median}"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testutil;
    use droplens_synth::WorldConfig;

    #[test]
    fn covers_the_forged_population() {
        let fig = compute(testutil::study());
        assert_eq!(fig.rows.len(), WorldConfig::small().mix.hj_forged_irr);
    }

    #[test]
    fn bulk_within_a_week_with_configured_outliers() {
        let fig = compute(testutil::study());
        let cfg = WorldConfig::small();
        assert_eq!(fig.announced_before_record(), cfg.late_irr_outliers);
        // Everyone else was announced within 7 days of the record.
        assert_eq!(fig.bgp_within(7), fig.rows.len() - cfg.late_irr_outliers);
    }

    #[test]
    fn drop_listing_follows_bgp() {
        let fig = compute(testutil::study());
        for r in &fig.rows {
            if r.to_bgp >= 0 {
                assert!(
                    r.to_drop >= r.to_bgp,
                    "{}: listed before announced?",
                    r.prefix
                );
            }
        }
    }

    #[test]
    fn renders() {
        let fig = compute(testutil::study());
        assert!(fig.to_string().contains("IRR creation"));
    }
}

//! Figure 5: routing status of ROAs over time.
//!
//! Monthly series over the study window:
//!
//! * space covered by (non-AS0, production-TAL) ROAs;
//! * the percentage of that space actually routed (paper: 97.1% → 90.5%);
//! * signed-but-unrouted space (paper: grows to 6.7 /8s — the hijackable
//!   surface §6 warns about);
//! * allocated, unrouted space with no ROA at all (paper: 30.0 /8s, 60.8%
//!   of it under ARIN).
//!
//! Plus the §6.2.1 concentration stat: the top holders of unrouted signed
//! space (paper: Amazon 3.1 /8s, Prudential 1.0, Alibaba 0.64 — 70.1%
//! among three orgs) and the largest month-over-month jump (the Amazon
//! ROA-creation event annotated in the figure).

use std::collections::BTreeMap;
use std::fmt;

use droplens_net::{AddressSpace, Date, Ipv4Prefix};
use droplens_rir::Rir;
use droplens_rpki::Tal;

use crate::report::{pct, render_series_csv, Series};
use crate::Study;

/// One sample date's accounting.
#[derive(Debug, Clone)]
pub struct Fig5Point {
    /// Sample day.
    pub date: Date,
    /// Space under non-AS0 production ROAs.
    pub signed: AddressSpace,
    /// Of that, space routed (announced exactly or more specifically).
    pub signed_routed: AddressSpace,
    /// Signed but unrouted (the hijackable signed surface).
    pub signed_unrouted: AddressSpace,
    /// Allocated, unrouted, and entirely unsigned.
    pub allocated_unrouted_unsigned: AddressSpace,
}

impl Fig5Point {
    /// Percent of signed space routed.
    pub fn routed_fraction(&self) -> f64 {
        self.signed_routed.fraction_of(self.signed)
    }
}

/// The computed figure.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// Monthly samples.
    pub points: Vec<Fig5Point>,
    /// Unrouted-signed space per holder org at the final sample,
    /// descending.
    pub top_holders: Vec<(String, AddressSpace)>,
    /// Fraction of unrouted-signed space held by the top three orgs
    /// (paper: 70.1%).
    pub top3_share: f64,
    /// Per-RIR share of the allocated-unrouted-unsigned space at the
    /// final sample (paper: ARIN 60.8%).
    pub unsigned_by_rir: Vec<(Rir, AddressSpace)>,
    /// The sample with the largest jump in unrouted-signed space (the
    /// Amazon event).
    pub biggest_jump: Option<(Date, AddressSpace)>,
}

/// Compute Figure 5 with monthly sampling.
pub fn compute(study: &Study) -> Fig5 {
    let mut dates = Vec::new();
    let mut d = study.config.window.start().first_of_month();
    while d < study.config.window.end() {
        dates.push(d);
        let (y, m, _) = d.ymd();
        d = if m == 12 {
            Date::from_ymd(y + 1, 1, 1)
        } else {
            Date::from_ymd(y, m + 1, 1)
        };
    }
    if let Some(last) = study.config.window.last() {
        if dates.last() != Some(&last) {
            dates.push(last);
        }
    }

    let points: Vec<Fig5Point> = dates.iter().map(|&d| sample(study, d)).collect();

    // Holder concentration at the final sample.
    let mut top_holders: Vec<(String, AddressSpace)> = Vec::new();
    let mut unsigned_by_rir: Vec<(Rir, AddressSpace)> = Vec::new();
    if let Some(&end) = dates.last() {
        let mut by_org: BTreeMap<String, AddressSpace> = BTreeMap::new();
        for prefix in signed_prefixes(study, end) {
            if study.routed_at(&prefix, end) {
                continue;
            }
            let org = study
                .rir
                .status_of(&prefix, end)
                .map(|s| s.opaque_id)
                .unwrap_or_else(|| "(unknown)".to_owned());
            *by_org.entry(org).or_default() += AddressSpace::of_prefix(&prefix);
        }
        top_holders = by_org.into_iter().collect();
        top_holders.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

        let mut by_rir: BTreeMap<Rir, AddressSpace> = BTreeMap::new();
        for (prefix, rir, _) in study.rir.delegated_prefixes(end) {
            if study.routed_at(&prefix, end)
                || study.roa.is_signed_at(&prefix, end, &Tal::PRODUCTION)
            {
                continue;
            }
            *by_rir.entry(rir).or_default() += AddressSpace::of_prefix(&prefix);
        }
        unsigned_by_rir = by_rir.into_iter().collect();
        unsigned_by_rir.sort_by_key(|&(_, s)| std::cmp::Reverse(s));
    }
    let total_unrouted: AddressSpace = top_holders.iter().map(|(_, s)| *s).sum();
    let top3: AddressSpace = top_holders.iter().take(3).map(|(_, s)| *s).sum();

    let mut biggest_jump = None;
    for pair in points.windows(2) {
        let jump = pair[1]
            .signed_unrouted
            .saturating_sub(pair[0].signed_unrouted);
        if biggest_jump
            .as_ref()
            .is_none_or(|&(_, best): &(Date, AddressSpace)| jump > best)
        {
            biggest_jump = Some((pair[1].date, jump));
        }
    }

    Fig5 {
        points,
        top_holders,
        top3_share: top3.fraction_of(total_unrouted),
        unsigned_by_rir,
        biggest_jump,
    }
}

/// The non-AS0 production-TAL ROA prefixes active on `date`, as *exact*
/// prefixes with more-specifics of another signed prefix removed (so
/// that space sums count each address once, while holder attribution
/// still resolves against exact allocation records — canonical
/// aggregation would merge neighboring holders' blocks).
fn signed_prefixes(study: &Study, date: Date) -> Vec<Ipv4Prefix> {
    let mut trie: droplens_net::PrefixTrie<()> = droplens_net::PrefixTrie::new();
    for rec in study.roa.active_on(date, &Tal::PRODUCTION) {
        if !rec.roa.is_as0() {
            trie.insert(rec.roa.prefix, ());
        }
    }
    trie.keys()
        .filter(|p| trie.matches(p).len() == 1) // keep only uncovered roots
        .collect()
}

fn sample(study: &Study, date: Date) -> Fig5Point {
    let mut signed = AddressSpace::ZERO;
    let mut signed_routed = AddressSpace::ZERO;
    for prefix in signed_prefixes(study, date) {
        let space = AddressSpace::of_prefix(&prefix);
        signed += space;
        if study.routed_at(&prefix, date) {
            signed_routed += space;
        }
    }

    // Allocated + unrouted + unsigned. Delegated prefixes are disjoint by
    // construction of the stats files.
    let mut allocated_unrouted_unsigned = AddressSpace::ZERO;
    for (prefix, _, _) in study.rir.delegated_prefixes(date) {
        if study.routed_at(&prefix, date) {
            continue;
        }
        if study.roa.is_signed_at(&prefix, date, &Tal::PRODUCTION) {
            continue;
        }
        allocated_unrouted_unsigned += AddressSpace::of_prefix(&prefix);
    }

    Fig5Point {
        date,
        signed,
        signed_routed,
        signed_unrouted: signed.saturating_sub(signed_routed),
        allocated_unrouted_unsigned,
    }
}

impl fmt::Display for Fig5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 5: routing status of ROAs (monthly, /8 equivalents)"
        )?;
        let mut signed = Series::new("signed");
        let mut routed_pct = Series::new("pct_routed");
        let mut unrouted = Series::new("signed_unrouted");
        let mut unsigned = Series::new("alloc_unrouted_no_roa");
        for p in &self.points {
            signed.push(p.date, p.signed.slash8_equivalents());
            routed_pct.push(p.date, p.routed_fraction() * 100.0);
            unrouted.push(p.date, p.signed_unrouted.slash8_equivalents());
            unsigned.push(p.date, p.allocated_unrouted_unsigned.slash8_equivalents());
        }
        f.write_str(&render_series_csv(
            "date",
            &[signed, routed_pct, unrouted, unsigned],
        ))?;
        if let Some(last) = self.points.last() {
            writeln!(
                f,
                "final: signed={}, routed={}, signed-unrouted={}, allocated-unrouted-no-ROA={}",
                last.signed,
                pct(last.routed_fraction()),
                last.signed_unrouted,
                last.allocated_unrouted_unsigned,
            )?;
        }
        writeln!(
            f,
            "top unrouted-signed holders (top3 share {}):",
            pct(self.top3_share)
        )?;
        for (org, space) in self.top_holders.iter().take(5) {
            writeln!(f, "  {org}: {space}")?;
        }
        if let Some((date, jump)) = &self.biggest_jump {
            writeln!(f, "largest unrouted-signed jump: +{jump} at {date}")?;
        }
        writeln!(f, "allocated-unrouted-unsigned by RIR:")?;
        let total: AddressSpace = self.unsigned_by_rir.iter().map(|(_, s)| *s).sum();
        for (rir, space) in &self.unsigned_by_rir {
            writeln!(f, "  {rir}: {space} ({})", pct(space.fraction_of(total)))?;
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code: panics are failures
mod tests {
    use super::*;
    use crate::experiments::testutil;

    #[test]
    fn signed_space_grows_and_routed_pct_declines() {
        let fig = compute(testutil::study());
        let first = fig.points.first().unwrap();
        let last = fig.points.last().unwrap();
        assert!(last.signed > first.signed, "ROA space should grow");
        assert!(
            last.routed_fraction() < first.routed_fraction(),
            "routed share should decline: {} -> {}",
            first.routed_fraction(),
            last.routed_fraction()
        );
        assert!(last.routed_fraction() > 0.5, "{}", last.routed_fraction());
    }

    #[test]
    fn unrouted_signed_space_grows() {
        let fig = compute(testutil::study());
        let first = fig.points.first().unwrap();
        let last = fig.points.last().unwrap();
        assert!(last.signed_unrouted > first.signed_unrouted);
        assert!(!last.allocated_unrouted_unsigned.is_zero());
    }

    #[test]
    fn amazon_style_event_is_the_biggest_jump() {
        let fig = compute(testutil::study());
        let (date, jump) = fig.biggest_jump.unwrap();
        // The small world's "amazon" signs 8 /12s on 2020-10-01, so the
        // October sample carries the step.
        assert_eq!((date.year(), date.month()), (2020, 10));
        assert!(jump.slash8_equivalents() > 0.4, "{jump}");
    }

    #[test]
    fn top_holders_concentrate_unrouted_signed_space() {
        let fig = compute(testutil::study());
        assert!(!fig.top_holders.is_empty());
        assert!(fig.top3_share > 0.5, "{}", fig.top3_share);
        // The Amazon-analog org leads.
        assert!(
            fig.top_holders[0].0.contains("amazon"),
            "{:?}",
            fig.top_holders[0]
        );
    }

    #[test]
    fn arin_dominates_unsigned_unrouted() {
        let fig = compute(testutil::study());
        assert_eq!(
            fig.unsigned_by_rir.first().map(|(r, _)| *r),
            Some(Rir::Arin)
        );
    }

    #[test]
    fn renders_csv() {
        let fig = compute(testutil::study());
        let s = fig.to_string();
        assert!(s.contains("date,signed,pct_routed"));
        assert!(s.contains("top unrouted-signed holders"));
    }
}

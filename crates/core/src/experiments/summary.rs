//! Study overview: the §3 "Data Sets" summary — what was loaded, how the
//! listings break down, and the archive footprint. The first thing to
//! print when pointing the pipeline at a new archive tree.

use std::collections::BTreeMap;
use std::fmt;

use droplens_drop::Category;
use droplens_net::AddressSpace;
use droplens_rir::Rir;

use crate::report::TextTable;
use crate::Study;

/// The computed overview.
#[derive(Debug, Clone)]
pub struct Summary {
    /// First study day.
    pub window_start: droplens_net::Date,
    /// Last study day.
    pub window_end: droplens_net::Date,
    /// Listing episodes.
    pub listings: usize,
    /// Unique listed prefixes.
    pub unique_prefixes: usize,
    /// Listings with surviving SBL records.
    pub with_records: usize,
    /// Total listed space (each address once).
    pub listed_space: AddressSpace,
    /// Listings per category.
    pub per_category: BTreeMap<Category, usize>,
    /// Listings per managing RIR.
    pub per_rir: BTreeMap<Rir, usize>,
    /// Collector peers loaded.
    pub peers: usize,
    /// Prefixes ever observed in BGP.
    pub bgp_prefixes: usize,
    /// Route-object generations in the IRR.
    pub irr_objects: usize,
    /// ROA generations in the archive.
    pub roas: usize,
    /// RIR stats snapshots loaded.
    pub rir_snapshots: usize,
}

/// Compute the overview.
pub fn compute(study: &Study) -> Summary {
    let mut per_category = BTreeMap::new();
    let mut per_rir = BTreeMap::new();
    for e in &study.entries {
        for &c in &e.categories {
            *per_category.entry(c).or_insert(0) += 1;
        }
        if let Some(r) = e.rir {
            *per_rir.entry(r).or_insert(0) += 1;
        }
    }
    Summary {
        window_start: study.config.window.start(),
        window_end: study.config.window.last_or_start(),
        listings: study.entries.len(),
        unique_prefixes: study.drop.unique_prefixes().len(),
        with_records: study
            .entries
            .iter()
            .filter(|e| !e.has(Category::NoSblRecord))
            .count(),
        listed_space: study.total_listed_space(),
        per_category,
        per_rir,
        peers: study.peers.len(),
        bgp_prefixes: study.bgp.prefixes().count(),
        irr_objects: study.irr.all().len(),
        roas: study.roa.all().len(),
        rir_snapshots: study.rir.snapshot_dates().len(),
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Study {} .. {}: {} listings ({} unique prefixes, {} with SBL records, {})",
            self.window_start,
            self.window_end,
            self.listings,
            self.unique_prefixes,
            self.with_records,
            self.listed_space,
        )?;
        writeln!(
            f,
            "Archives: {} peers, {} BGP prefixes, {} IRR objects, {} ROAs, {} stats snapshots",
            self.peers, self.bgp_prefixes, self.irr_objects, self.roas, self.rir_snapshots,
        )?;
        let mut t = TextTable::new(vec!["Category", "Listings"]);
        for (c, n) in &self.per_category {
            t.row(vec![c.name().to_owned(), n.to_string()]);
        }
        f.write_str(&t.render())?;
        let mut t = TextTable::new(vec!["Registry", "Listings"]);
        for (r, n) in &self.per_rir {
            t.row(vec![r.display_name().to_owned(), n.to_string()]);
        }
        f.write_str(&t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testutil;
    use droplens_synth::WorldConfig;

    #[test]
    fn counts_are_consistent() {
        let s = compute(testutil::study());
        let cfg = WorldConfig::small();
        assert_eq!(s.listings, cfg.mix.total());
        assert_eq!(s.unique_prefixes, cfg.mix.total());
        assert_eq!(s.with_records, cfg.mix.with_record());
        assert_eq!(s.peers, cfg.peer_count);
        assert_eq!(s.per_category[&Category::NoSblRecord], cfg.mix.nr);
        assert!(s.bgp_prefixes > s.listings);
        assert!(s.roas > 0);
        assert!(s.irr_objects > 0);
        let rir_total: usize = s.per_rir.values().sum();
        assert_eq!(rir_total, s.listings, "every listing resolves a registry");
    }

    #[test]
    fn renders() {
        let s = compute(testutil::study());
        let text = s.to_string();
        assert!(text.contains("Study 2019-06-05 .. 2022-03-30"));
        assert!(text.contains("Registry"));
    }
}

//! Figure 4 / §6.1: hijacks of RPKI-signed prefixes and the RPKI-valid
//! hijack case study.
//!
//! Detection pipeline, from the data alone:
//!
//! 1. Find hijack listings whose prefix was RPKI-signed *before* it was
//!    listed (paper: 3 of 179).
//! 2. Split them by ROA history: if the ROA's ASN changed in the two
//!    years before listing, tracking the BGP origin, the attacker likely
//!    controls the ROA (paper: 2). Otherwise the announcement reused the
//!    authorized origin — an RPKI-valid hijack (paper: 1,
//!    132.255.0.0/22).
//! 3. For the RPKI-valid case, extract the announcement's suspicious
//!    transit (the AS upstream of the origin) and sweep the archive for
//!    other prefixes announced `origin via transit` (paper: 6 more, 3 of
//!    which were also DROP-listed), reconstructing the plotted timeline
//!    rows as origin/transit segments.

use std::fmt;

use droplens_bgp::history::{find_origin_via_transit, origin_segments, OriginSegment};
use droplens_drop::Category;
use droplens_net::{Asn, Date, DateRange, Ipv4Prefix};
use droplens_rpki::Tal;

use crate::Study;

/// One prefix in the case-study sweep.
#[derive(Debug, Clone)]
pub struct PatternRow {
    /// The prefix.
    pub prefix: Ipv4Prefix,
    /// First day the pattern (origin via transit) was observed.
    pub first_seen: Date,
    /// Whether the matched origin had originated the prefix before.
    pub origin_is_historic: bool,
    /// The prefix's DROP listing date, if it was listed.
    pub listed: Option<Date>,
    /// Whether the prefix is covered by a production-TAL ROA at the
    /// sweep date.
    pub rpki_signed: bool,
    /// The plotted timeline row: origin/transit segments over the study.
    pub segments: Vec<OriginSegment>,
}

/// The case study.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// The RPKI-valid hijacked prefix (paper: 132.255.0.0/22).
    pub prefix: Ipv4Prefix,
    /// The ROA-authorized origin the hijacker reused (paper: AS263692).
    pub origin: Asn,
    /// The suspicious transit (paper: AS50509).
    pub transit: Asn,
    /// Every prefix matching `origin via transit`, including the case
    /// prefix, sorted by first appearance.
    pub pattern: Vec<PatternRow>,
}

/// §6.1 + Figure 4 results.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// Hijack listings analyzed.
    pub hijack_listings: usize,
    /// Hijack prefixes RPKI-signed before listing (paper: 3).
    pub signed_before_listing: Vec<Ipv4Prefix>,
    /// Of those, prefixes whose ROA ASN tracked the BGP origin (paper: 2).
    pub attacker_controlled: Vec<Ipv4Prefix>,
    /// The RPKI-valid hijack case study (paper: 1).
    pub case: Option<CaseStudy>,
}

/// Compute Figure 4.
pub fn compute(study: &Study) -> Fig4 {
    let tals = &Tal::PRODUCTION;
    let hijacks: Vec<_> = study
        .without_incidents()
        .filter(|e| e.has(Category::Hijacked))
        .collect();

    let mut signed_before = Vec::new();
    let mut attacker_controlled = Vec::new();
    let mut valid_candidates = Vec::new();
    for e in &hijacks {
        let listed = e.entry.added;
        if !study.roa.is_signed_at(&e.prefix(), listed, tals) {
            continue;
        }
        signed_before.push(e.prefix());
        if roa_tracked_origin(study, &e.prefix(), listed) {
            attacker_controlled.push(e.prefix());
        } else {
            valid_candidates.push(*e);
        }
    }

    // The RPKI-valid case: the candidate whose announced origin matches
    // the ROA.
    let case = valid_candidates.iter().find_map(|e| {
        let listed = e.entry.added;
        let origins = study.bgp.origins_at(&e.prefix(), listed);
        let roas = study.roa.roas_covering_at(&e.prefix(), listed, tals);
        let origin = roas
            .iter()
            .map(|r| r.asn)
            .find(|asn| origins.contains(asn))?;
        // The suspicious transit: of the transit ASes carrying the
        // hijack, the one that recurs most across *other* hijack
        // listings' announcements — how the paper homed in on AS50509,
        // which also carried the forged-IRR hijacks.
        let transit = suspicious_transit(study, &e.prefix(), listed)?;
        Some(build_case(study, e.prefix(), origin, transit))
    });

    Fig4 {
        hijack_listings: hijacks.len(),
        signed_before_listing: signed_before,
        attacker_controlled,
        case,
    }
}

/// Did the exact-prefix ROA history change ASN in the two years before
/// listing, with each ROA ASN matching the then-current BGP origin?
fn roa_tracked_origin(study: &Study, prefix: &Ipv4Prefix, listed: Date) -> bool {
    let history = study.roa.asn_history(prefix);
    if history.len() < 2 {
        return false;
    }
    let mut changes = 0;
    for window in history.windows(2) {
        let (prev, prev_asn) = (&window[0].0, window[0].1);
        let (next, next_asn) = (&window[1].0, window[1].1);
        if prev_asn == next_asn {
            continue;
        }
        let change_day = next.created;
        if change_day > listed || change_day < listed - 730 {
            continue;
        }
        // Origin before the change matched the old ROA; after, the new.
        let before = study.bgp.origins_at(prefix, change_day.pred());
        let after = study.bgp.origins_at(prefix, change_day + 1);
        let _ = prev; // lifetime clarity
        if before.contains(&prev_asn) && after.contains(&next_asn) {
            changes += 1;
        }
    }
    changes > 0
}

/// Rank the case announcement's transit hops by how often each appears on
/// other hijack listings' announced paths; return the most recurrent.
fn suspicious_transit(study: &Study, case: &Ipv4Prefix, listed: Date) -> Option<Asn> {
    use std::collections::{BTreeMap, BTreeSet};
    let peer_asns: BTreeSet<Asn> = study.peers.iter().map(|p| p.asn).collect();

    // Candidate hops: the case announcement's transits.
    let mut candidates: BTreeSet<Asn> = BTreeSet::new();
    for peer in study.peers.iter() {
        if let Some(path) = study.bgp.path_at(case, peer.id, listed) {
            let origin = path.origin();
            candidates.extend(
                path.hops()
                    .iter()
                    .filter(|&&h| h != origin && !peer_asns.contains(&h)),
            );
        }
    }

    // Score candidates across the other hijack listings' paths.
    let mut score: BTreeMap<Asn, usize> = BTreeMap::new();
    for e in study.without_incidents() {
        if !e.has(Category::Hijacked) || e.prefix() == *case {
            continue;
        }
        let mut hops: BTreeSet<Asn> = BTreeSet::new();
        for peer in study.peers.iter() {
            for iv in study.bgp.intervals(&e.prefix(), peer.id) {
                let path = study.bgp.path_of(iv.path);
                let origin = path.origin();
                hops.extend(
                    path.hops()
                        .iter()
                        .filter(|&&h| h != origin && !peer_asns.contains(&h)),
                );
            }
        }
        for &c in &candidates {
            if hops.contains(&c) {
                *score.entry(c).or_insert(0) += 1;
            }
        }
    }
    candidates
        .into_iter()
        .max_by_key(|c| score.get(c).copied().unwrap_or(0))
}

fn build_case(study: &Study, prefix: Ipv4Prefix, origin: Asn, transit: Asn) -> CaseStudy {
    // Sweep the whole archive era, as the paper inspected all of its BGP
    // data for the pattern.
    let sweep = DateRange::new(
        study
            .bgp
            .first_date()
            .unwrap_or(study.config.window.start()),
        study.horizon(),
    );
    let mut pattern: Vec<PatternRow> = find_origin_via_transit(&study.bgp, origin, transit, sweep)
        .into_iter()
        .map(|m| {
            let listed = study.drop.for_prefix(&m.prefix).first().map(|e| e.added);
            PatternRow {
                prefix: m.prefix,
                first_seen: m.first_seen,
                origin_is_historic: m.origin_is_historic,
                listed,
                rpki_signed: study
                    .roa
                    .is_signed_at(&m.prefix, m.first_seen, &Tal::PRODUCTION),
                segments: origin_segments(&study.bgp, &m.prefix, sweep),
            }
        })
        .collect();
    pattern.sort_by_key(|r| (r.first_seen, r.prefix));
    CaseStudy {
        prefix,
        origin,
        transit,
        pattern,
    }
}

impl fmt::Display for Fig4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 4 / §6.1: of {} hijack listings, {} were RPKI-signed before listing; {} with attacker-controlled ROAs",
            self.hijack_listings,
            self.signed_before_listing.len(),
            self.attacker_controlled.len(),
        )?;
        let Some(case) = &self.case else {
            return writeln!(f, "  no RPKI-valid hijack found");
        };
        writeln!(
            f,
            "  RPKI-valid hijack: {} (ROA origin {}, via transit {})",
            case.prefix, case.origin, case.transit
        )?;
        writeln!(
            f,
            "  pattern sweep ({} via {}): {} prefixes, {} DROP-listed",
            case.origin,
            case.transit,
            case.pattern.len(),
            case.pattern.iter().filter(|r| r.listed.is_some()).count(),
        )?;
        for row in &case.pattern {
            writeln!(
                f,
                "    {:<18} first {}  historic-origin={}  signed={}  listed={}",
                row.prefix.to_string(),
                row.first_seen,
                row.origin_is_historic,
                row.rpki_signed,
                row.listed
                    .map(|d| d.to_string())
                    .unwrap_or_else(|| "-".into()),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code: panics are failures
mod tests {
    use super::*;
    use crate::experiments::testutil;

    #[test]
    fn three_signed_two_attacker_one_valid() {
        let fig = compute(testutil::study());
        // Scripted: 2 attacker-ROA + 1 RPKI-valid case + the 3 listed
        // pattern prefixes (unsigned) = signed_before has the case + 2.
        assert_eq!(fig.attacker_controlled.len(), 2);
        assert!(fig.case.is_some());
        assert!(fig.signed_before_listing.len() >= 3);
    }

    #[test]
    fn case_identity_matches_truth() {
        let fig = compute(testutil::study());
        let truth = &testutil::world().truth;
        let case = fig.case.as_ref().unwrap();
        assert_eq!(Some(case.prefix), truth.case_study_prefix);
        assert_eq!(Some(case.origin), truth.case_origin);
        assert_eq!(Some(case.transit), truth.case_transit);
    }

    #[test]
    fn pattern_sweep_finds_all_related_prefixes() {
        let fig = compute(testutil::study());
        let truth = &testutil::world().truth;
        let case = fig.case.as_ref().unwrap();
        let found: std::collections::BTreeSet<_> = case.pattern.iter().map(|r| r.prefix).collect();
        for p in &truth.case_pattern_prefixes {
            assert!(found.contains(p), "missing {p}");
        }
        // Four of them were listed on the scripted date.
        let listed = case.pattern.iter().filter(|r| r.listed.is_some()).count();
        assert_eq!(listed, 4);
    }

    #[test]
    fn case_prefix_reuses_historic_origin() {
        let fig = compute(testutil::study());
        let case = fig.case.as_ref().unwrap();
        let row = case
            .pattern
            .iter()
            .find(|r| r.prefix == case.prefix)
            .unwrap();
        assert!(row.origin_is_historic);
        assert!(row.rpki_signed);
        // Its timeline has a legitimate era, a gap, and the hijack era.
        assert!(row.segments.len() >= 3, "{:?}", row.segments);
        assert!(row.segments.iter().any(|s| s.is_unrouted()));
    }

    #[test]
    fn renders() {
        let fig = compute(testutil::study());
        let s = fig.to_string();
        assert!(s.contains("RPKI-valid hijack"));
        assert!(s.contains("pattern sweep"));
    }
}

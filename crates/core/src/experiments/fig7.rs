//! Figure 7: unallocated address space remaining in each RIR's free
//! pool, over time.
//!
//! The paper plots each RIR's `available` space from the daily stats
//! files: AFRINIC and ARIN hold the most unallocated space not covered by
//! an AS0 ROA; LACNIC's pool nearly exhausts during the study.

use std::fmt;

use droplens_net::{AddressSpace, Date, PrefixSet};
use droplens_rir::Rir;
use droplens_rpki::Tal;

use crate::report::{render_series_csv, Series};
use crate::Study;

/// The computed figure: per-RIR free-pool series sampled at the stats
/// snapshots inside the study window, plus the figure's annotation — how
/// much of each final pool an AS0 ROA covers (only APNIC and LACNIC
/// published AS0 TALs, so "unallocated space not covered by an AS0 ROA"
/// is dominated by AFRINIC and ARIN).
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// Sample dates.
    pub dates: Vec<Date>,
    /// Pool sizes per RIR, aligned with `dates`, in RIR order.
    pub pools: Vec<(Rir, Vec<AddressSpace>)>,
    /// At the final sample: per RIR, `(pool space covered by an AS0 ROA,
    /// pool space uncovered)`.
    pub as0_coverage: Vec<(Rir, AddressSpace, AddressSpace)>,
}

impl Fig7 {
    /// Final pool size for one RIR.
    pub fn final_pool(&self, rir: Rir) -> AddressSpace {
        self.pools
            .iter()
            .find(|(r, _)| *r == rir)
            .and_then(|(_, v)| v.last().copied())
            .unwrap_or(AddressSpace::ZERO)
    }

    /// Initial pool size for one RIR.
    pub fn initial_pool(&self, rir: Rir) -> AddressSpace {
        self.pools
            .iter()
            .find(|(r, _)| *r == rir)
            .and_then(|(_, v)| v.first().copied())
            .unwrap_or(AddressSpace::ZERO)
    }
}

/// Compute Figure 7.
pub fn compute(study: &Study) -> Fig7 {
    let dates: Vec<Date> = study
        .rir
        .snapshot_dates()
        .into_iter()
        .filter(|d| study.config.window.contains(*d))
        .collect();
    let pools: Vec<(Rir, Vec<AddressSpace>)> = Rir::ALL
        .into_iter()
        .map(|rir| {
            let series = dates.iter().map(|&d| study.rir.free_pool(rir, d)).collect();
            (rir, series)
        })
        .collect();

    // AS0 coverage of each final free pool: walk the AS0-TAL ROAs active
    // at the end and intersect them with the pool's `available` rows.
    let mut as0_coverage = Vec::new();
    if let Some(&end) = dates.last() {
        let mut as0_space = PrefixSet::new();
        for rec in study.roa.active_on(end, &[Tal::ApnicAs0, Tal::LacnicAs0]) {
            as0_space.insert(rec.roa.prefix);
        }
        for rir in Rir::ALL {
            // Intersect each AS0-TAL ROA with this RIR's still-available
            // space: a ROA prefix counts only while the registry shows it
            // undelegated (later allocations eat into the covered set).
            let mut covered = AddressSpace::ZERO;
            for p in as0_space.iter() {
                if study.rir.rir_managing(&p, end) == Some(rir) && !study.rir.is_allocated(&p, end)
                {
                    covered += AddressSpace::of_prefix(&p);
                }
            }
            let pool = study.rir.free_pool(rir, end);
            as0_coverage.push((rir, covered, pool.saturating_sub(covered)));
        }
    }
    Fig7 {
        dates,
        pools,
        as0_coverage,
    }
}

impl fmt::Display for Fig7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 7: unallocated addresses per RIR free pool")?;
        let series: Vec<Series> = self
            .pools
            .iter()
            .map(|(rir, values)| {
                let mut s = Series::new(rir.token());
                for (d, v) in self.dates.iter().zip(values) {
                    s.push(d, v.addresses() as f64);
                }
                s
            })
            .collect();
        f.write_str(&render_series_csv("date", &series))?;
        for (rir, _) in &self.pools {
            writeln!(
                f,
                "  {:<9} {} -> {} addresses",
                rir.display_name(),
                self.initial_pool(*rir).addresses(),
                self.final_pool(*rir).addresses(),
            )?;
        }
        writeln!(f, "AS0 coverage of the final pools:")?;
        for (rir, covered, uncovered) in &self.as0_coverage {
            writeln!(
                f,
                "  {:<9} covered {} / uncovered {} addresses",
                rir.display_name(),
                covered.addresses(),
                uncovered.addresses(),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testutil;

    #[test]
    fn pools_decline_monotonically_modulo_deallocations() {
        let fig = compute(testutil::study());
        for (rir, series) in &fig.pools {
            // Deallocated blocks can return to the pool, so allow small
            // upticks; the trend must be downward.
            assert!(
                fig.final_pool(*rir) <= fig.initial_pool(*rir),
                "{rir}: pool grew overall"
            );
            assert!(!series.is_empty());
        }
    }

    #[test]
    fn afrinic_has_largest_pool_and_lacnic_drains_most() {
        let fig = compute(testutil::study());
        let afrinic_end = fig.final_pool(Rir::Afrinic);
        for rir in [Rir::Apnic, Rir::Arin, Rir::Lacnic, Rir::RipeNcc] {
            assert!(afrinic_end >= fig.final_pool(rir), "{rir}");
        }
        let lacnic_drain = fig
            .initial_pool(Rir::Lacnic)
            .saturating_sub(fig.final_pool(Rir::Lacnic));
        let arin_drain = fig
            .initial_pool(Rir::Arin)
            .saturating_sub(fig.final_pool(Rir::Arin));
        assert!(lacnic_drain > arin_drain);
    }

    #[test]
    fn sample_dates_stay_inside_window() {
        let fig = compute(testutil::study());
        let w = testutil::study().config.window;
        assert!(fig.dates.iter().all(|d| w.contains(*d)));
        assert!(fig.dates.len() >= 30, "{}", fig.dates.len());
    }

    #[test]
    fn as0_coverage_only_where_policies_exist() {
        let fig = compute(testutil::study());
        for (rir, covered, uncovered) in &fig.as0_coverage {
            match rir {
                Rir::Apnic | Rir::Lacnic => {
                    // Policy RIRs: the bulk of the pool is covered (later
                    // allocations ate into covered space, so not all).
                    assert!(!covered.is_zero(), "{rir}: no AS0 coverage");
                }
                _ => {
                    assert!(covered.is_zero(), "{rir}: AS0 ROAs without a policy");
                    assert!(!uncovered.is_zero());
                }
            }
        }
        // The caption's point: the largest uncovered pools are AFRINIC
        // and ARIN.
        let mut by_uncovered = fig.as0_coverage.clone();
        by_uncovered.sort_by_key(|&(_, _, u)| std::cmp::Reverse(u));
        let top2: Vec<Rir> = by_uncovered.iter().take(2).map(|&(r, _, _)| r).collect();
        assert!(top2.contains(&Rir::Afrinic), "{top2:?}");
        assert!(top2.contains(&Rir::Arin), "{top2:?}");
    }

    #[test]
    fn renders_csv_with_all_rirs() {
        let fig = compute(testutil::study());
        let s = fig.to_string();
        assert!(s.contains("afrinic"));
        assert!(s.contains("ripencc"));
    }
}

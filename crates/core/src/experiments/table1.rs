//! Table 1: RPKI signing rate of prefixes that had no ROA, by region and
//! DROP status.
//!
//! Three populations per RIR, all restricted to prefixes without a
//! covering ROA at their reference date:
//!
//! * **Never on DROP** — BGP-announced prefixes never listed (reference
//!   date: study start). Base RPKI adoption.
//! * **Removed from DROP** — listings Spamhaus removed during the study
//!   (reference: the listing date).
//! * **Present on DROP** — listings still on the list at study end.
//!
//! A prefix "signed" if a covering production-TAL ROA was created between
//! its reference date and the end of the study. §4.2's follow-on: of the
//! removed-and-signed prefixes, how many signed with an ASN different
//! from the BGP origin at listing time (paper: 82.3% different, 6.3%
//! same).

use std::collections::BTreeMap;
use std::fmt;

use droplens_net::Date;
use droplens_rir::Rir;
use droplens_rpki::Tal;

use crate::report::{pct, rate, TextTable};
use crate::Study;

/// `(signed, total)` counts for one cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cell {
    /// Prefixes that gained a covering ROA in their window.
    pub signed: usize,
    /// Population size.
    pub total: usize,
}

impl Cell {
    /// The signing rate (0.0 for an empty cell).
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.signed as f64 / self.total as f64
        }
    }
}

/// One region's row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// The region.
    pub rir: Rir,
    /// Never-on-DROP population.
    pub never: Cell,
    /// Removed-from-DROP population.
    pub removed: Cell,
    /// Present-on-DROP population.
    pub present: Cell,
}

/// The full table plus the §4.2 ASN-agreement statistic.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// One row per RIR, paper order.
    pub rows: Vec<Table1Row>,
    /// Column totals.
    pub overall: Table1Row,
    /// Of removed-and-signed prefixes: signed with an ASN different from
    /// the BGP origin at listing.
    pub removed_signed_different_asn: usize,
    /// Of removed-and-signed prefixes: signed with the same ASN.
    pub removed_signed_same_asn: usize,
}

impl Table1 {
    /// Fraction of removed-and-signed prefixes signed with a different
    /// ASN (paper: 82.3%).
    pub fn different_asn_fraction(&self) -> f64 {
        let total = self.removed_signed_different_asn + self.removed_signed_same_asn;
        if total == 0 {
            0.0
        } else {
            self.removed_signed_different_asn as f64 / total as f64
        }
    }
}

/// Compute Table 1.
pub fn compute(study: &Study) -> Table1 {
    let tals = &Tal::PRODUCTION;
    let start = study.config.window.start();
    let end = study.config.window.last_or_start();

    let mut rows: BTreeMap<Rir, Table1Row> = Rir::ALL
        .into_iter()
        .map(|r| {
            (
                r,
                Table1Row {
                    rir: r,
                    never: Cell::default(),
                    removed: Cell::default(),
                    present: Cell::default(),
                },
            )
        })
        .collect();

    // --- Never on DROP: every announced prefix that was never listed.
    for prefix in study.bgp.prefixes() {
        if !study.drop.for_prefix(&prefix).is_empty() {
            continue;
        }
        let Some(rir) = study.rir.rir_managing(&prefix, start) else {
            continue; // pool space (unlisted squats), outside the plan
        };
        if study.roa.is_signed_at(&prefix, start, tals) {
            continue; // already had a ROA at the study start
        }
        let Some(row) = rows.get_mut(&rir) else {
            continue;
        };
        let cell = &mut row.never;
        cell.total += 1;
        if signed_between(study, &prefix, start, end) {
            cell.signed += 1;
        }
    }

    // --- DROP populations (incidents excluded, as everywhere).
    let mut different = 0usize;
    let mut same = 0usize;
    for entry in study.without_incidents() {
        let prefix = entry.prefix();
        let listed = entry.entry.added;
        let Some(rir) = entry.rir else { continue };
        if !entry.allocated_at_listing {
            continue; // unallocated listings have no RIR row in the table
        }
        if study.roa.is_signed_at(&prefix, listed, tals) {
            continue; // had a ROA when added (the paper's exclusions)
        }
        let Some(row) = rows.get_mut(&rir) else {
            continue;
        };
        let signed = signed_between(study, &prefix, listed, end);
        if entry.entry.was_removed() {
            row.removed.total += 1;
            if signed {
                row.removed.signed += 1;
                // §4.2: compare the signing ASN with the origin at listing.
                if let Some(roa_rec) = study
                    .roa
                    .signings_in_window(&prefix, listed, end, tals)
                    .into_iter()
                    .min_by_key(|r| r.created)
                {
                    // The origin "at the time the prefix appeared on
                    // DROP": the live origin that day, or — if the route
                    // was already withdrawn — the last origin seen before
                    // the listing.
                    let mut origins = study.bgp.origins_at(&prefix, listed);
                    if origins.is_empty() {
                        if let Some((&asn, _)) = study
                            .bgp
                            .historic_origins_before(&prefix, listed + 1)
                            .iter()
                            .max_by_key(|(_, &first)| first)
                        {
                            origins.insert(asn);
                        }
                    }
                    if origins.contains(&roa_rec.roa.asn) {
                        same += 1;
                    } else {
                        different += 1;
                    }
                }
            }
        } else {
            row.present.total += 1;
            if signed {
                row.present.signed += 1;
            }
        }
    }

    let rows: Vec<Table1Row> = Rir::ALL
        .into_iter()
        .filter_map(|r| rows.remove(&r))
        .collect();
    let fold = |get: fn(&Table1Row) -> Cell| {
        rows.iter().fold(Cell::default(), |acc, r| {
            let c = get(r);
            Cell {
                signed: acc.signed + c.signed,
                total: acc.total + c.total,
            }
        })
    };
    let overall = Table1Row {
        rir: Rir::Arin, // placeholder; the overall row prints "Overall"
        never: fold(|r| r.never),
        removed: fold(|r| r.removed),
        present: fold(|r| r.present),
    };

    Table1 {
        rows,
        overall,
        removed_signed_different_asn: different,
        removed_signed_same_asn: same,
    }
}

/// A covering production-TAL ROA created strictly after `from`, up to
/// `to` (the reference date itself is excluded: the population is
/// "unsigned as of the reference date").
fn signed_between(study: &Study, prefix: &droplens_net::Ipv4Prefix, from: Date, to: Date) -> bool {
    !study
        .roa
        .signings_in_window(prefix, from + 1, to, &Tal::PRODUCTION)
        .is_empty()
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(vec![
            "Region",
            "Never on DROP",
            "Removed from DROP",
            "Present on DROP",
        ]);
        for row in &self.rows {
            t.row(vec![
                row.rir.display_name().to_owned(),
                rate(row.never.signed, row.never.total),
                rate(row.removed.signed, row.removed.total),
                rate(row.present.signed, row.present.total),
            ]);
        }
        t.row(vec![
            "Overall".to_owned(),
            rate(self.overall.never.signed, self.overall.never.total),
            rate(self.overall.removed.signed, self.overall.removed.total),
            rate(self.overall.present.signed, self.overall.present.total),
        ]);
        f.write_str(&t.render())?;
        writeln!(
            f,
            "Removed-and-signed: {} different ASN, {} same ASN ({} different)",
            self.removed_signed_different_asn,
            self.removed_signed_same_asn,
            pct(self.different_asn_fraction()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testutil;

    #[test]
    fn ordering_removed_gt_never_gt_present() {
        let t = compute(testutil::study());
        let removed = t.overall.removed.fraction();
        let never = t.overall.never.fraction();
        let present = t.overall.present.fraction();
        assert!(
            removed > never,
            "removed {removed} should exceed base {never}"
        );
        assert!(
            never > present,
            "base {never} should exceed present {present}"
        );
    }

    #[test]
    fn populations_are_disjoint_and_sized() {
        let t = compute(testutil::study());
        let w = testutil::world();
        assert!(t.overall.removed.total <= w.truth.listed.len());
        assert!(t.overall.present.total <= w.truth.listed.len());
        assert!(
            t.overall.never.total > w.config.background_per_rir.iter().sum::<usize>() / 2,
            "never population too small: {}",
            t.overall.never.total
        );
    }

    #[test]
    fn asn_agreement_mostly_different() {
        let t = compute(testutil::study());
        let total = t.removed_signed_different_asn + t.removed_signed_same_asn;
        assert!(total > 0, "no removed-and-signed prefixes at all");
        assert!(
            t.different_asn_fraction() > 0.5,
            "{}",
            t.different_asn_fraction()
        );
    }

    #[test]
    fn never_rates_track_config_base_rates() {
        let t = compute(testutil::study());
        let rates = testutil::world().config.base_signing_rate;
        for (row, &expected) in t.rows.iter().zip(rates.iter()) {
            if row.never.total < 20 {
                continue; // too small to compare in the small world
            }
            let got = row.never.fraction();
            assert!(
                (got - expected).abs() < 0.20,
                "{}: got {got}, expected ≈{expected}",
                row.rir
            );
        }
    }

    #[test]
    fn renders_all_regions() {
        let t = compute(testutil::study());
        let s = t.to_string();
        for r in Rir::ALL {
            assert!(s.contains(r.display_name()));
        }
        assert!(s.contains("Overall"));
    }
}

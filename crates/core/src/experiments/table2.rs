//! Table 2 / Appendix A: the semi-automated SBL categorization.
//!
//! Two parts: (1) the six canonical record excerpts from Table 2 run
//! through the keyword classifier, verifying each lands on the paper's
//! labels; (2) the keyword-count distribution over the study's SBL
//! records (paper: 90% one keyword, 2.7% two, 7.3% none).

use std::fmt;

use droplens_drop::{classify, Category};

use crate::report::{pct, TextTable};
use crate::Study;

/// The six excerpts of the paper's Table 2, with their expected labels.
pub const EXCERPTS: [(&str, &str, &[Category]); 6] = [
    (
        "SBL310721",
        "AS204139 spammer hosting",
        &[Category::MaliciousHosting],
    ),
    (
        "SBL240976",
        "hijacked IP range ... billing@ahostinginc.com",
        &[Category::Hijacked],
    ),
    (
        "SBL502548",
        "Snowshoe IP block on Stolen AS62927 ... james.johnson@networxhosting.com",
        &[Category::SnowshoeSpam, Category::Hijacked],
    ),
    (
        "SBL322513",
        "Register Of Known Spam Operations ... snowshoe range",
        &[Category::KnownSpamOperation, Category::SnowshoeSpam],
    ),
    (
        "SBL294939",
        "Register Of Known Spam Operations ... illegal netblock hijacking operation",
        &[Category::KnownSpamOperation, Category::Hijacked],
    ),
    (
        "SBL325529",
        "Department of Defense ... Spamhaus believes that this IP address range is being \
         used or is about to be used for the purpose of high volume spam emission.",
        &[], // no keyword: manual inference (snowshoe)
    ),
];

/// One excerpt's classification outcome.
#[derive(Debug, Clone)]
pub struct ExcerptResult {
    /// Record id from the paper.
    pub id: &'static str,
    /// Categories the classifier produced.
    pub got: Vec<Category>,
    /// The paper's labels.
    pub expected: Vec<Category>,
}

impl ExcerptResult {
    /// Did the classifier agree with the paper?
    pub fn agrees(&self) -> bool {
        self.got == self.expected
    }
}

/// The computed table.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// The six canonical excerpts.
    pub excerpts: Vec<ExcerptResult>,
    /// Study records with exactly one keyword group.
    pub one_keyword: usize,
    /// Study records with two or more keyword groups.
    pub two_keywords: usize,
    /// Study records with none (the manual-inference bucket).
    pub no_keywords: usize,
}

impl Table2 {
    /// Total study records classified.
    pub fn total(&self) -> usize {
        self.one_keyword + self.two_keywords + self.no_keywords
    }

    /// The paper's 90 / 2.7 / 7.3% split, as fractions.
    pub fn distribution(&self) -> (f64, f64, f64) {
        let n = self.total().max(1) as f64;
        (
            self.one_keyword as f64 / n,
            self.two_keywords as f64 / n,
            self.no_keywords as f64 / n,
        )
    }
}

/// Compute Table 2.
pub fn compute(study: &Study) -> Table2 {
    let excerpts = EXCERPTS
        .iter()
        .map(|(id, text, expected)| {
            let mut got: Vec<Category> = classify(text).categories.into_iter().collect();
            got.sort();
            let mut expected: Vec<Category> = expected.to_vec();
            expected.sort();
            ExcerptResult { id, got, expected }
        })
        .collect();

    let mut one = 0;
    let mut two = 0;
    let mut none = 0;
    for record in study.sbl.iter() {
        match classify(&record.text).keyword_hits {
            0 => none += 1,
            1 => one += 1,
            _ => two += 1,
        }
    }
    Table2 {
        excerpts,
        one_keyword: one,
        two_keywords: two,
        no_keywords: none,
    }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(vec!["Record", "Classifier", "Paper", "Agrees"]);
        for e in &self.excerpts {
            let fmt_cats = |cats: &[Category]| {
                if cats.is_empty() {
                    "(manual)".to_owned()
                } else {
                    cats.iter().map(|c| c.code()).collect::<Vec<_>>().join("+")
                }
            };
            t.row(vec![
                e.id.to_owned(),
                fmt_cats(&e.got),
                fmt_cats(&e.expected),
                e.agrees().to_string(),
            ]);
        }
        f.write_str(&t.render())?;
        let (one, two, none) = self.distribution();
        writeln!(
            f,
            "keyword distribution over {} records: one={} two={} none={}",
            self.total(),
            pct(one),
            pct(two),
            pct(none),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testutil;

    #[test]
    fn all_six_excerpts_agree_with_the_paper() {
        let t = compute(testutil::study());
        for e in &t.excerpts {
            assert!(
                e.agrees(),
                "{}: got {:?}, expected {:?}",
                e.id,
                e.got,
                e.expected
            );
        }
    }

    #[test]
    fn distribution_shape() {
        let t = compute(testutil::study());
        let (one, _two, none) = t.distribution();
        // Paper: 90% one keyword, 7.3% none. Generous bands for the small
        // world's sampling noise.
        assert!(one > 0.7, "one={one}");
        assert!(none < 0.25, "none={none}");
        assert_eq!(t.total(), testutil::study().sbl.len());
    }

    #[test]
    fn renders() {
        let t = compute(testutil::study());
        let s = t.to_string();
        assert!(s.contains("SBL502548"));
        assert!(s.contains("keyword distribution"));
    }
}

//! Extension: counterfactual ROV deployment.
//!
//! The paper's conclusion argues for (1) operators signing unrouted space
//! with AS0 and (2) RIR AS0 TALs being usable for filtering. This
//! experiment asks: **had validators enforced each policy, how many of
//! the malicious announcements in this study would have been rejected at
//! announcement time?**
//!
//! Three policies, evaluated against each listing's announcement on its
//! listing day:
//!
//! * `Rov` — plain RFC 6811 against the production TALs (drop Invalid);
//! * `RovPlusAs0Tals` — production + the APNIC/LACNIC AS0 TALs;
//! * `RovPlusOperatorAs0` — additionally assume every holder of signed
//!   but unrouted space had used AS0 (the §6.2.1 recommendation): any
//!   announcement covered by a non-AS0 ROA whose space was unrouted the
//!   day before counts as rejected unless the origin matches the ROA —
//!   and forged-origin announcements of long-unrouted signed space count
//!   as rejected too, because an AS0 ROA would have replaced the stale
//!   authorization.

use std::fmt;

use droplens_drop::Category;
use droplens_net::Asn;
use droplens_rpki::{RovOutcome, Tal};

use crate::report::pct;
use crate::Study;

/// Counterfactual outcomes per policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct PolicyOutcome {
    /// Listings whose announcement would have been rejected.
    pub rejected: usize,
    /// Listings evaluated (announced on their listing day).
    pub total: usize,
}

impl PolicyOutcome {
    /// Rejected fraction.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.rejected as f64 / self.total as f64
        }
    }
}

/// The counterfactual results.
#[derive(Debug, Clone)]
pub struct ExtRov {
    /// Plain ROV (production TALs).
    pub rov: PolicyOutcome,
    /// ROV + RIR AS0 TALs.
    pub rov_as0_tals: PolicyOutcome,
    /// ROV + AS0 TALs + operator AS0 on unrouted signed space.
    pub rov_operator_as0: PolicyOutcome,
    /// Unallocated listings rejected under the AS0 TALs specifically.
    pub ua_rejected_by_as0_tals: usize,
    /// Unallocated listings total.
    pub ua_total: usize,
}

/// Compute the counterfactual.
pub fn compute(study: &Study) -> ExtRov {
    let mut rov = PolicyOutcome::default();
    let mut with_tals = PolicyOutcome::default();
    let mut with_operator = PolicyOutcome::default();
    let mut ua_rejected = 0usize;
    let mut ua_total = 0usize;

    let all_tals = Tal::ALL;

    for e in study.without_incidents() {
        let prefix = e.prefix();
        let listed = e.entry.added;
        let origins = study.bgp.origins_at(&prefix, listed);
        let Some(&origin) = origins.iter().next() else {
            continue; // not announced on the listing day
        };
        rov.total += 1;
        with_tals.total += 1;
        with_operator.total += 1;
        let is_ua = e.has(Category::Unallocated);
        if is_ua {
            ua_total += 1;
        }

        let plain = study
            .roa
            .validate_at(&prefix, origin, listed, &Tal::PRODUCTION);
        if plain == RovOutcome::Invalid {
            rov.rejected += 1;
        }
        let tals = study.roa.validate_at(&prefix, origin, listed, &all_tals);
        if tals == RovOutcome::Invalid {
            with_tals.rejected += 1;
            if is_ua && plain != RovOutcome::Invalid {
                ua_rejected += 1;
            }
        }

        // Operator AS0 counterfactual: rejected if either policy above
        // fires, or the announcement leans on a ROA for space that was
        // unrouted before the announcement began (an AS0 ROA would have
        // stood in its place).
        let operator_rejects = tals == RovOutcome::Invalid
            || leans_on_stale_authorization(study, &prefix, origin, listed);
        if operator_rejects {
            with_operator.rejected += 1;
        }
    }

    ExtRov {
        rov,
        rov_as0_tals: with_tals,
        rov_operator_as0: with_operator,
        ua_rejected_by_as0_tals: ua_rejected,
        ua_total,
    }
}

/// Did this RPKI-valid announcement revive a ROA for space its holder had
/// stopped announcing (the 132.255.0.0/22 situation)? Under the operator
/// AS0 recommendation, that ROA would have been AS0 instead.
fn leans_on_stale_authorization(
    study: &Study,
    prefix: &droplens_net::Ipv4Prefix,
    origin: Asn,
    listed: droplens_net::Date,
) -> bool {
    if study
        .roa
        .validate_at(prefix, origin, listed, &Tal::PRODUCTION)
        != RovOutcome::Valid
    {
        return false;
    }
    // Find when the current announcement run began, then check whether
    // the prefix had a long unrouted gap just before it.
    let scope: Vec<droplens_bgp::PeerId> = study.peers.iter().map(|p| p.id).collect();
    let mut run_start = None;
    for peer in study.peers.iter() {
        for iv in study.bgp.intervals(prefix, peer.id) {
            if iv.contains(listed) {
                run_start =
                    Some(run_start.map_or(iv.start, |d: droplens_net::Date| d.min(iv.start)));
            }
        }
    }
    let Some(run_start) = run_start else {
        return false;
    };
    matches!(
        droplens_bgp::history::unrouted_gap_before(&study.bgp, prefix, &scope, run_start),
        Some(gap) if gap >= 60
    )
}

impl fmt::Display for ExtRov {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Extension: counterfactual ROV deployment (announcements on listing day)"
        )?;
        for (name, o) in [
            ("ROV, production TALs", &self.rov),
            ("ROV + RIR AS0 TALs", &self.rov_as0_tals),
            ("ROV + AS0 TALs + operator AS0", &self.rov_operator_as0),
        ] {
            writeln!(
                f,
                "  {name:<32} rejects {:>3} of {} listings ({})",
                o.rejected,
                o.total,
                pct(o.fraction()),
            )?;
        }
        writeln!(
            f,
            "  unallocated listings newly rejected by the AS0 TALs: {} of {}",
            self.ua_rejected_by_as0_tals, self.ua_total
        )
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code: panics are failures
mod tests {
    use super::*;
    use crate::experiments::testutil;

    #[test]
    fn policies_strictly_escalate() {
        let e = compute(testutil::study());
        assert!(e.rov.rejected <= e.rov_as0_tals.rejected);
        assert!(e.rov_as0_tals.rejected <= e.rov_operator_as0.rejected);
        assert_eq!(e.rov.total, e.rov_as0_tals.total);
    }

    #[test]
    fn as0_tals_catch_unallocated_squats() {
        let e = compute(testutil::study());
        // Squats in APNIC/LACNIC pools get caught; other regions have no
        // AS0 TAL, so not all 40 (small world: 8) are rejected.
        assert!(e.ua_rejected_by_as0_tals > 0, "{e}");
        assert!(e.ua_rejected_by_as0_tals <= e.ua_total);
    }

    #[test]
    fn operator_as0_catches_the_case_study() {
        let study = testutil::study();
        let world = testutil::world();
        let case = world.truth.case_study_prefix.unwrap();
        let t = world.truth.for_prefix(&case).unwrap();
        assert!(leans_on_stale_authorization(
            study,
            &case,
            world.truth.case_origin.unwrap(),
            t.listed
        ));
    }

    #[test]
    fn plain_rov_rejects_almost_nothing() {
        // The paper's point: attackers avoid signed space, so plain ROV
        // barely bites on the DROP population.
        let e = compute(testutil::study());
        assert!(e.rov.fraction() < 0.2, "{}", e.rov.fraction());
    }

    #[test]
    fn renders() {
        let e = compute(testutil::study());
        assert!(e.to_string().contains("counterfactual ROV"));
    }
}

//! Figure 2: effects of blocklisting on routing visibility.
//!
//! Left panel: the CDF of days from DROP listing to the prefix vanishing
//! from every collector peer (19% within 30 days overall; 70.7% for
//! hijacked and 54.8% for unallocated prefixes). Right panel: fraction of
//! listed prefixes each peer observed, exposing the peers that filter the
//! DROP list (the paper found three).

use std::fmt;

use droplens_bgp::visibility::{
    detect_filtering_peers, peer_observations, withdrawal_outcome, PeerObservation, Withdrawal,
    WithdrawalCdf,
};
use droplens_bgp::PeerId;
use droplens_drop::Category;
use droplens_net::{DateRange, Ipv4Prefix};

use crate::report::pct;
use crate::Study;

/// Filtering-peer detection threshold: a peer observing less than this
/// fraction of the observable DROP prefixes, while the median peer is
/// above it, is inferred to filter the list.
pub const FILTER_THRESHOLD: f64 = 0.5;

/// The computed figure.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// Withdrawal CDF over all non-incident listings.
    pub overall: WithdrawalCdf,
    /// CDF restricted to hijack-labeled listings.
    pub hijacked: WithdrawalCdf,
    /// CDF restricted to unallocated listings.
    pub unallocated: WithdrawalCdf,
    /// Per-peer observation fractions (right panel).
    pub peers: Vec<PeerObservation>,
    /// Peers inferred to filter the DROP list.
    pub filtering_peers: Vec<PeerId>,
}

impl Fig2 {
    /// Fraction withdrawn within 30 days, overall (paper: 19%).
    pub fn overall_30d(&self) -> f64 {
        self.overall.fraction_within(30)
    }

    /// Same for hijacked listings (paper: 70.7%).
    pub fn hijacked_30d(&self) -> f64 {
        self.hijacked.fraction_within(30)
    }

    /// Same for unallocated listings (paper: 54.8%).
    pub fn unallocated_30d(&self) -> f64 {
        self.unallocated.fraction_within(30)
    }
}

/// Compute Figure 2.
pub fn compute(study: &Study) -> Fig2 {
    let lookback = study.config.withdrawal_lookback;
    let mut all = Vec::new();
    let mut hj = Vec::new();
    let mut ua = Vec::new();
    for entry in study.without_incidents() {
        let outcome = withdrawal_outcome(&study.bgp, &entry.prefix(), entry.entry.added, lookback);
        all.push(outcome);
        if entry.has(Category::Hijacked) {
            hj.push(outcome);
        }
        if entry.has(Category::Unallocated) {
            ua.push(outcome);
        }
    }

    let listings: Vec<(Ipv4Prefix, DateRange)> = study
        .without_incidents()
        .map(|e| (e.prefix(), e.entry.listed_range(study.horizon())))
        .collect();
    let peers = peer_observations(&study.bgp, &listings);
    let filtering_peers = detect_filtering_peers(&peers, FILTER_THRESHOLD);

    Fig2 {
        overall: WithdrawalCdf::from_outcomes(all),
        hijacked: WithdrawalCdf::from_outcomes(hj),
        unallocated: WithdrawalCdf::from_outcomes(ua),
        peers,
        filtering_peers,
    }
}

/// Convenience: did this entry's prefix leave BGP within `days` of
/// listing? Exposed for ablation benches.
pub fn withdrawn_within(
    study: &Study,
    entry_prefix: &Ipv4Prefix,
    listed: droplens_net::Date,
    days: i32,
) -> bool {
    matches!(
        withdrawal_outcome(&study.bgp, entry_prefix, listed, study.config.withdrawal_lookback),
        Withdrawal::WithdrawnAfterDays(d) if d <= days
    )
}

/// Sensitivity ablation: the withdrawn-within-30-days fraction as a
/// function of the visibility threshold defining "withdrawn" (the paper
/// uses "no peer observes it", i.e. threshold 1; a stale route lingering
/// at one peer arguably should not count as still-routed).
pub fn threshold_sensitivity(study: &Study, thresholds: &[usize]) -> Vec<(usize, f64)> {
    let lookback = study.config.withdrawal_lookback;
    let entries: Vec<_> = study.without_incidents().collect();
    thresholds
        .iter()
        .map(|&threshold| {
            let mut withdrawn = 0usize;
            let mut denominator = 0usize;
            for e in &entries {
                let listed = e.entry.added;
                let prefix = e.prefix();
                if !study.bgp.ever_observed(&prefix) {
                    continue;
                }
                denominator += 1;
                if let Some(gone) =
                    study
                        .bgp
                        .first_below_threshold_after(&prefix, listed - lookback, threshold)
                {
                    if gone - listed <= 30 {
                        withdrawn += 1;
                    }
                }
            }
            let fraction = if denominator == 0 {
                0.0
            } else {
                withdrawn as f64 / denominator as f64
            };
            (threshold, fraction)
        })
        .collect()
}

impl fmt::Display for Fig2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 2 (left): withdrawal after listing")?;
        for (name, cdf) in [
            ("overall", &self.overall),
            ("hijacked", &self.hijacked),
            ("unallocated", &self.unallocated),
        ] {
            writeln!(
                f,
                "  {name:<12} n={:<4} -1d={} +2d={} +7d={} +30d={}",
                cdf.denominator,
                pct(cdf.fraction_within(-1)),
                pct(cdf.fraction_within(2)),
                pct(cdf.fraction_within(7)),
                pct(cdf.fraction_within(30)),
            )?;
        }
        // The plotted curve, decimated to at most ~20 knots for terminal
        // output; programmatic consumers use `overall.curve()` directly.
        let curve = self.overall.curve();
        if !curve.is_empty() {
            let step = (curve.len() / 20).max(1);
            write!(f, "  curve (day:cum%):")?;
            for (d, frac) in curve.iter().step_by(step) {
                write!(f, " {d}:{:.0}%", frac * 100.0)?;
            }
            writeln!(f)?;
        }
        writeln!(f, "Figure 2 (right): per-peer observation of DROP prefixes")?;
        for p in &self.peers {
            let flag = if self.filtering_peers.contains(&p.peer) {
                "  <-- filters DROP"
            } else {
                ""
            };
            writeln!(
                f,
                "  {} observed {}/{} ({}){flag}",
                p.peer,
                p.observed,
                p.observable,
                pct(p.fraction())
            )?;
        }
        writeln!(
            f,
            "  => {} peers appear to filter the DROP list",
            self.filtering_peers.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testutil;

    #[test]
    fn ordering_matches_paper_shape() {
        // The small world has only 8 unallocated listings, so HJ-vs-UA
        // ordering is noisy here; the strict HJ > UA > overall ordering
        // is asserted at mid size in tests/end_to_end.rs. Here: both
        // malicious-announcement categories withdraw far more than the
        // legitimately-allocated rest.
        let fig = compute(testutil::study());
        assert!(
            fig.hijacked_30d() > fig.overall_30d(),
            "hj={} overall={}",
            fig.hijacked_30d(),
            fig.overall_30d()
        );
        assert!(fig.unallocated_30d() > fig.overall_30d());
        assert!(fig.hijacked_30d() > 0.45, "{}", fig.hijacked_30d());
        assert!(fig.overall_30d() < 0.45, "{}", fig.overall_30d());
    }

    #[test]
    fn detects_exactly_the_filtering_peers() {
        let fig = compute(testutil::study());
        let truth = &testutil::world().truth.filtering_peers;
        let mut detected = fig.filtering_peers.clone();
        detected.sort();
        let mut expected = truth.clone();
        expected.sort();
        assert_eq!(detected, expected);
    }

    #[test]
    fn normal_peers_observe_nearly_everything() {
        let fig = compute(testutil::study());
        for p in &fig.peers {
            if !fig.filtering_peers.contains(&p.peer) {
                assert!(p.fraction() > 0.9, "{}: {}", p.peer, p.fraction());
            } else {
                assert!(p.fraction() < 0.5, "{}: {}", p.peer, p.fraction());
            }
        }
    }

    #[test]
    fn renders() {
        let fig = compute(testutil::study());
        let s = fig.to_string();
        assert!(s.contains("+30d="));
        assert!(s.contains("filter the DROP list"));
    }

    #[test]
    fn threshold_sensitivity_is_monotone() {
        let study = testutil::study();
        let sweep = threshold_sensitivity(study, &[1, 2, 3, 5]);
        assert_eq!(sweep.len(), 4);
        // A laxer definition of "withdrawn" (higher threshold) can only
        // increase the withdrawn fraction.
        for pair in sweep.windows(2) {
            assert!(
                pair[1].1 >= pair[0].1,
                "threshold {} -> {} decreased the fraction: {:?}",
                pair[0].0,
                pair[1].0,
                sweep
            );
        }
        // Threshold 1 matches the headline inference (same definition).
        let fig = compute(study);
        assert!((sweep[0].1 - fig.overall_30d()).abs() < 0.05);
        // With 2 of 8 peers filtering the DROP list, a threshold above
        // the non-filtering peer count trips immediately for everything.
        let all = threshold_sensitivity(study, &[7]);
        assert!(all[0].1 > 0.9, "{:?}", all);
    }
}

//! §5: effectiveness of the IRR.
//!
//! The paper's IRR statistics over the DROP population:
//!
//! * 31.7% of prefixes (68.8% of space) had a route object — exact match
//!   or more specific — in the 7-day window before listing;
//! * of those, 32% had the object *created* in the month before listing
//!   (forgeries) and 43% had it *removed* in the month after;
//! * of the 130 ASN-labeled hijacks, 57 (45%) had a route object whose
//!   origin matched the hijacker's ASN, registered under 13 distinct
//!   ASNs, with 3 ORG-IDs behind 49 of them;
//! * the largest ORG's prefixes shared a common AS in their announced
//!   paths (AS50509);
//! * one prefix was unallocated when its route object was accepted.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use droplens_drop::Category;
use droplens_net::{Asn, PrefixSet};

use crate::report::pct;
use crate::Study;

/// The §5 statistics.
#[derive(Debug, Clone)]
pub struct Sec5 {
    /// All listings (the 31.7%/68.8% prevalence statistics include the
    /// AFRINIC incidents, whose registered space dominates DROP's bytes).
    pub total: usize,
    /// Listings with a route object (exact or more specific) active in
    /// the 7 days before listing.
    pub with_route_object: usize,
    /// Space covered by those listings as a fraction of all listed space.
    pub space_fraction: f64,
    /// Of `with_route_object`: object created within 30 days before
    /// listing.
    pub created_month_before: usize,
    /// Of `with_route_object`: object removed within 30 days after
    /// listing.
    pub removed_month_after: usize,
    /// Hijack listings with a labeled malicious ASN (paper: 130).
    pub labeled_hijacks: usize,
    /// Of those: a route object whose origin equals the labeled ASN
    /// (paper: 57).
    pub matching_asn: usize,
    /// Distinct origin ASNs across the matching objects (paper: 13).
    pub distinct_forger_asns: usize,
    /// ORG-ID → matching-prefix count, descending (paper: 3 ORG-IDs
    /// behind 49).
    pub org_groups: Vec<(String, usize)>,
    /// Matching prefixes covered by the top 3 ORG-IDs.
    pub top3_org_prefixes: usize,
    /// Among the top ORG-IDs, the first whose prefixes share a common AS
    /// on every announced path (paper: one ORG's 15 prefixes all transited
    /// AS50509).
    pub org_with_common_transit: Option<(String, Asn)>,
    /// Unallocated listings that nevertheless had a route object.
    pub unallocated_with_object: usize,
}

/// Compute the §5 statistics.
pub fn compute(study: &Study) -> Sec5 {
    let entries: Vec<&crate::StudyEntry> = study.entries.iter().collect();
    let total = entries.len();

    let mut with_obj = 0usize;
    let mut with_obj_space = PrefixSet::new();
    let mut created_before = 0usize;
    let mut removed_after = 0usize;
    let mut unallocated_with_object = 0usize;

    for e in &entries {
        let listed = e.entry.added;
        let objects = study.irr.active_in_window(&e.prefix(), listed - 7, listed);
        if objects.is_empty() {
            continue;
        }
        with_obj += 1;
        with_obj_space.insert(e.prefix());
        if objects
            .iter()
            .any(|o| o.created >= listed - 30 && o.created <= listed)
        {
            created_before += 1;
        }
        if objects
            .iter()
            .any(|o| o.removed.is_some_and(|r| r > listed && r <= listed + 30))
        {
            removed_after += 1;
        }
        if e.has(Category::Unallocated) {
            unallocated_with_object += 1;
        }
    }

    // ASN-labeled hijacks and the forged-object correlation.
    let mut labeled = 0usize;
    let mut matching = 0usize;
    let mut forger_asns: BTreeSet<Asn> = BTreeSet::new();
    let mut orgs: BTreeMap<String, Vec<droplens_net::Ipv4Prefix>> = BTreeMap::new();
    for e in &entries {
        let Some(asn) = e.hijacker_asn() else {
            continue;
        };
        labeled += 1;
        let matched: Vec<_> = study
            .irr
            .for_prefix_or_more_specific(&e.prefix())
            .into_iter()
            .filter(|o| o.object.origin == asn)
            .collect();
        if matched.is_empty() {
            continue;
        }
        matching += 1;
        forger_asns.insert(asn);
        for o in &matched {
            if let Some(org) = o.object.org.clone() {
                orgs.entry(org).or_default().push(e.prefix());
            }
        }
    }

    let mut org_groups: Vec<(String, usize)> = orgs
        .iter()
        .map(|(org, prefixes)| (org.clone(), prefixes.len()))
        .collect();
    org_groups.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let top3_org_prefixes: usize = org_groups.iter().take(3).map(|(_, n)| n).sum();

    // The common-AS sweep: inspect each of the top ORGs' announced paths
    // until one shares a transit across all of its prefixes.
    let org_with_common_transit = org_groups
        .iter()
        .take(3)
        .find_map(|(org, _)| common_path_as(study, &orgs[org]).map(|asn| (org.clone(), asn)));

    let total_space = study.total_listed_space();
    Sec5 {
        total,
        with_route_object: with_obj,
        space_fraction: with_obj_space.space().fraction_of(total_space),
        created_month_before: created_before,
        removed_month_after: removed_after,
        labeled_hijacks: labeled,
        matching_asn: matching,
        distinct_forger_asns: forger_asns.len(),
        org_groups,
        top3_org_prefixes,
        org_with_common_transit,
        unallocated_with_object,
    }
}

/// The non-origin, non-peer AS present on every observed path of every
/// given prefix — how the paper spotted AS50509.
fn common_path_as(study: &Study, prefixes: &[droplens_net::Ipv4Prefix]) -> Option<Asn> {
    let peer_asns: BTreeSet<Asn> = study.peers.iter().map(|p| p.asn).collect();
    let mut common: Option<BTreeSet<Asn>> = None;
    for prefix in prefixes {
        let mut hops: BTreeSet<Asn> = BTreeSet::new();
        for peer in study.peers.iter() {
            for iv in study.bgp.intervals(prefix, peer.id) {
                let path = study.bgp.path_of(iv.path);
                let origin = path.origin();
                hops.extend(
                    path.hops()
                        .iter()
                        .filter(|&&h| h != origin && !peer_asns.contains(&h)),
                );
            }
        }
        if hops.is_empty() {
            continue; // never announced: no constraint
        }
        common = Some(match common {
            None => hops,
            Some(prev) => prev.intersection(&hops).copied().collect(),
        });
        if common.as_ref().is_some_and(BTreeSet::is_empty) {
            return None;
        }
    }
    common.and_then(|set| set.into_iter().next())
}

impl fmt::Display for Sec5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Section 5: effectiveness of the IRR")?;
        writeln!(
            f,
            "  route object (exact/more-specific) within 7d before listing: {} of {} ({}), covering {} of listed space",
            self.with_route_object,
            self.total,
            pct(self.with_route_object as f64 / self.total.max(1) as f64),
            pct(self.space_fraction),
        )?;
        writeln!(
            f,
            "  of those: created within month before = {} ({}); removed within month after = {} ({})",
            self.created_month_before,
            pct(self.created_month_before as f64 / self.with_route_object.max(1) as f64),
            self.removed_month_after,
            pct(self.removed_month_after as f64 / self.with_route_object.max(1) as f64),
        )?;
        writeln!(
            f,
            "  ASN-labeled hijacks: {}; route object matching hijacker ASN: {} ({}); distinct forger ASNs: {}",
            self.labeled_hijacks,
            self.matching_asn,
            pct(self.matching_asn as f64 / self.labeled_hijacks.max(1) as f64),
            self.distinct_forger_asns,
        )?;
        writeln!(
            f,
            "  ORG-IDs behind matches: {} (top 3 cover {} prefixes)",
            self.org_groups.len(),
            self.top3_org_prefixes
        )?;
        for (org, n) in self.org_groups.iter().take(5) {
            writeln!(f, "    {org}: {n}")?;
        }
        match &self.org_with_common_transit {
            Some((org, asn)) => writeln!(
                f,
                "  {org}'s prefixes share a common AS on every path: {asn}"
            )?,
            None => writeln!(
                f,
                "  no top ORG shares a common AS across its announced paths"
            )?,
        }
        writeln!(
            f,
            "  unallocated prefixes holding a route object: {}",
            self.unallocated_with_object
        )
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code: panics are failures
mod tests {
    use super::*;
    use crate::experiments::testutil;
    use droplens_synth::WorldConfig;

    #[test]
    fn matching_asn_population_is_exact() {
        let s = compute(testutil::study());
        let mix = WorldConfig::small().mix;
        assert_eq!(s.matching_asn, mix.hj_forged_irr);
        // Labeled hijacks: forged + plain-labeled + ss_plus_hj.
        assert_eq!(
            s.labeled_hijacks,
            mix.hj_forged_irr + mix.hj_labeled_no_irr + mix.ss_plus_hj
        );
    }

    #[test]
    fn forged_orgs_discovered() {
        let s = compute(testutil::study());
        let w = testutil::world();
        // The three shared forger orgs appear in the groups.
        let orgs: Vec<&str> = s.org_groups.iter().map(|(o, _)| o.as_str()).collect();
        for org in &w.truth.forger_orgs {
            assert!(orgs.contains(&org.as_str()), "{org} not found in {orgs:?}");
        }
        // The top 3 orgs cover most matching prefixes (paper: 49 of 57).
        assert!(s.top3_org_prefixes * 10 >= s.matching_asn * 7);
    }

    #[test]
    fn suspicious_transit_discovered() {
        let s = compute(testutil::study());
        let w = testutil::world();
        let (org, asn) = s
            .org_with_common_transit
            .clone()
            .expect("an org stands out");
        assert_eq!(Some(asn), w.truth.case_transit);
        assert!(w.truth.forger_orgs.contains(&org), "{org}");
    }

    #[test]
    fn route_object_prevalence_and_dynamics() {
        let s = compute(testutil::study());
        assert!(s.with_route_object > 0);
        assert!(s.with_route_object < s.total);
        // Forgeries dominate creations shortly before listing.
        assert!(s.created_month_before > 0);
        assert!(s.removed_month_after > 0);
        assert!(s.created_month_before <= s.with_route_object);
    }

    #[test]
    fn one_unallocated_prefix_with_object() {
        let s = compute(testutil::study());
        assert_eq!(s.unallocated_with_object, 1);
    }

    #[test]
    fn distinct_forger_asns_bounded_by_13() {
        let s = compute(testutil::study());
        assert!(s.distinct_forger_asns >= 1);
        assert!(s.distinct_forger_asns <= 13);
    }

    #[test]
    fn renders() {
        let s = compute(testutil::study());
        let text = s.to_string();
        assert!(text.contains("route object"));
        assert!(text.contains("ORG-IDs"));
    }
}

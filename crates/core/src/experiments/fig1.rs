//! Figure 1: classification of DROP entries by prefixes and address
//! space.
//!
//! The figure's two bar groups: per category, how many prefixes carried
//! the label (split into "exclusively this label" and "this label plus
//! others"), and how much address space those prefixes covered — with the
//! AFRINIC-incident share of the hijack bars hatched out.

use std::collections::BTreeMap;
use std::fmt;

use droplens_drop::Category;
use droplens_net::{AddressSpace, PrefixSet};

use crate::report::{pct, TextTable};
use crate::Study;

/// One category's bar pair.
#[derive(Debug, Clone)]
pub struct Fig1Row {
    /// The category.
    pub category: Category,
    /// Entries labeled with this category only.
    pub exclusive_prefixes: usize,
    /// Entries labeled with this category plus at least one other.
    pub additional_prefixes: usize,
    /// Address space covered by all entries with this label.
    pub space: AddressSpace,
    /// Of that, space attributed to the AFRINIC incidents.
    pub incident_space: AddressSpace,
    /// Prefix count attributed to the AFRINIC incidents.
    pub incident_prefixes: usize,
}

impl Fig1Row {
    /// Total labeled prefixes.
    pub fn total_prefixes(&self) -> usize {
        self.exclusive_prefixes + self.additional_prefixes
    }
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// One row per category, in the figure's order.
    pub rows: Vec<Fig1Row>,
    /// Unique prefixes listed during the study.
    pub total_prefixes: usize,
    /// Total address space across all entries (each address once).
    pub total_space: AddressSpace,
    /// Share of the DROP address space attributed to the AFRINIC
    /// incidents (paper: 48.8%).
    pub incident_space_fraction: f64,
    /// Share of the prefix count attributed to the incidents (paper:
    /// 6.3%).
    pub incident_prefix_fraction: f64,
}

/// Compute Figure 1.
pub fn compute(study: &Study) -> Fig1 {
    let mut rows: BTreeMap<Category, Fig1Row> = Category::ALL
        .into_iter()
        .map(|c| {
            (
                c,
                Fig1Row {
                    category: c,
                    exclusive_prefixes: 0,
                    additional_prefixes: 0,
                    space: AddressSpace::ZERO,
                    incident_space: AddressSpace::ZERO,
                    incident_prefixes: 0,
                },
            )
        })
        .collect();

    let mut incident_space = AddressSpace::ZERO;
    let mut incident_prefixes = 0usize;
    for entry in &study.entries {
        let exclusive = entry.categories.len() == 1;
        for &cat in &entry.categories {
            let Some(row) = rows.get_mut(&cat) else {
                continue;
            };
            if exclusive {
                row.exclusive_prefixes += 1;
            } else {
                row.additional_prefixes += 1;
            }
            row.space += entry.space();
            if entry.afrinic_incident {
                row.incident_space += entry.space();
                row.incident_prefixes += 1;
            }
        }
        if entry.afrinic_incident {
            incident_space += entry.space();
            incident_prefixes += 1;
        }
    }

    let total_space = study.total_listed_space();
    let total_prefixes = study.entries.len();
    // A union set for the incident share keeps double counting out even
    // if incident prefixes nested.
    let incident_set: PrefixSet = study
        .entries
        .iter()
        .filter(|e| e.afrinic_incident)
        .map(|e| e.prefix())
        .collect();
    let incident_space = incident_set.space().min(incident_space);

    Fig1 {
        rows: Category::ALL
            .into_iter()
            .filter_map(|c| rows.remove(&c))
            .collect(),
        total_prefixes,
        total_space,
        incident_space_fraction: incident_space.fraction_of(total_space),
        incident_prefix_fraction: if total_prefixes == 0 {
            0.0
        } else {
            incident_prefixes as f64 / total_prefixes as f64
        },
    }
}

impl fmt::Display for Fig1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 1: {} prefixes, {} listed space; AFRINIC incidents = {} of prefixes, {} of space",
            self.total_prefixes,
            self.total_space,
            pct(self.incident_prefix_fraction),
            pct(self.incident_space_fraction),
        )?;
        let mut t = TextTable::new(vec![
            "Category",
            "Exclusive",
            "Additional",
            "Space (/8s)",
            "Space share",
        ]);
        for row in &self.rows {
            t.row(vec![
                row.category.name().to_owned(),
                row.exclusive_prefixes.to_string(),
                row.additional_prefixes.to_string(),
                format!("{:.3}", row.space.slash8_equivalents()),
                pct(row.space.fraction_of(self.total_space)),
            ]);
        }
        f.write_str(&t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testutil;
    use droplens_synth::WorldConfig;

    #[test]
    fn category_counts_match_mix() {
        let fig = compute(testutil::study());
        let mix = WorldConfig::small().mix;
        let by_cat: BTreeMap<Category, &Fig1Row> =
            fig.rows.iter().map(|r| (r.category, r)).collect();
        assert_eq!(
            by_cat[&Category::Hijacked].total_prefixes(),
            mix.hj_forged_irr
                + mix.hj_labeled_no_irr
                + mix.hj_afrinic_incident
                + mix.hj_unlabeled
                + mix.ss_plus_hj
        );
        assert_eq!(
            by_cat[&Category::SnowshoeSpam].total_prefixes(),
            mix.ss_exclusive + mix.ss_plus_hj + mix.ss_plus_ks
        );
        assert_eq!(
            by_cat[&Category::SnowshoeSpam].additional_prefixes,
            mix.ss_plus_hj + mix.ss_plus_ks
        );
        assert_eq!(by_cat[&Category::NoSblRecord].total_prefixes(), mix.nr);
        assert_eq!(by_cat[&Category::NoSblRecord].additional_prefixes, 0);
        assert_eq!(by_cat[&Category::Unallocated].total_prefixes(), mix.ua);
        assert_eq!(fig.total_prefixes, mix.total());
    }

    #[test]
    fn incident_space_dominates_like_the_paper() {
        // Few prefixes, huge share of space (paper: 6.3% / 48.8%).
        let fig = compute(testutil::study());
        assert!(
            fig.incident_prefix_fraction < 0.15,
            "{}",
            fig.incident_prefix_fraction
        );
        assert!(
            fig.incident_space_fraction > 0.30,
            "{}",
            fig.incident_space_fraction
        );
        // Hijack space share dwarfs snowshoe's despite fewer prefixes.
        let by_cat: BTreeMap<Category, &Fig1Row> =
            fig.rows.iter().map(|r| (r.category, r)).collect();
        assert!(by_cat[&Category::Hijacked].space > by_cat[&Category::SnowshoeSpam].space);
    }

    #[test]
    fn renders_every_category() {
        let fig = compute(testutil::study());
        let text = fig.to_string();
        for c in Category::ALL {
            assert!(text.contains(c.name()), "{} missing:\n{text}", c.name());
        }
    }
}

//! The study: all five sources loaded, indexed, and annotated.

use std::collections::{BTreeMap, BTreeSet};

use droplens_bgp::{format as bgpfmt, BgpArchive, BgpUpdate, Peer};
use droplens_drop::{
    classify, extract_asns, format as dropfmt, Category, DropEntry, DropSnapshot, DropTimeline,
    SblDatabase, SblId,
};
use droplens_irr::{format as irrbin, journal, IrrRegistry, JournalEntry};
use droplens_net::{
    AddressSpace, Asn, Date, DateRange, IngestError, IngestPolicy, IngestReport, Ipv4Prefix,
    ParseError, Quarantine, SourceCoverage, SourceIngest,
};
use droplens_rir::format::{parse_stats_file_bin_with, parse_stats_file_with, StatsFile};
use droplens_rir::{Rir, RirStatsArchive};
use droplens_rpki::format::{parse_events_bin_with, parse_events_with, RoaEvent};
use droplens_rpki::RoaArchive;
use droplens_synth::{BinaryArchives, TextArchives, World};

/// Expected days between RIR delegated-stats snapshots: the synthetic
/// world publishes them monthly, so a ≤31-day delta is not a gap.
const RIR_CADENCE_DAYS: u32 = 31;

/// Knobs of the analysis itself (not of the data): the study window and
/// the analyst-supplied manual labels for keyword-less SBL records.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// The paper's measurement window (inclusive).
    pub window: DateRange,
    /// Manual labels for SBL records with no Appendix-A keyword.
    pub manual_labels: BTreeMap<SblId, Vec<Category>>,
    /// Days of lookback when inferring withdrawal around a listing
    /// (Figure 2's CDF starts at −1 day).
    pub withdrawal_lookback: i32,
    /// How archive loaders react to malformed input (strict by default:
    /// synthetic archives must be byte-perfect).
    pub ingest: IngestPolicy,
}

impl StudyConfig {
    /// The paper's window with no manual labels.
    pub fn new(window: DateRange) -> StudyConfig {
        StudyConfig {
            window,
            manual_labels: BTreeMap::new(),
            withdrawal_lookback: 1,
            ingest: IngestPolicy::Strict,
        }
    }
}

/// One DROP listing episode, annotated with everything the correlations
/// need: classification, labeled ASNs, allocation status, and the
/// AFRINIC-incident flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StudyEntry {
    /// The raw listing episode.
    pub entry: DropEntry,
    /// Categories (keyword classification, falling back to manual labels;
    /// `NoSblRecord` when the SBL record is gone).
    pub categories: BTreeSet<Category>,
    /// Appendix-A keyword groups that fired on the record.
    pub keyword_hits: usize,
    /// ASNs named in the SBL record ("malicious ASN" annotation).
    pub asns: Vec<Asn>,
    /// Managing RIR on the listing day.
    pub rir: Option<Rir>,
    /// Whether the stats in force on the listing day showed the prefix
    /// delegated.
    pub allocated_at_listing: bool,
    /// Registry org handle on the listing day (groups the AFRINIC
    /// incidents).
    pub org: Option<String>,
    /// Set for the prefixes attributed to the two AFRINIC incidents,
    /// which the paper excludes from most analyses.
    pub afrinic_incident: bool,
}

impl StudyEntry {
    /// The listed prefix.
    pub fn prefix(&self) -> Ipv4Prefix {
        self.entry.prefix
    }

    /// Space covered by the prefix.
    pub fn space(&self) -> AddressSpace {
        AddressSpace::of_prefix(&self.entry.prefix)
    }

    /// True if the entry carries `cat`.
    pub fn has(&self, cat: Category) -> bool {
        self.categories.contains(&cat)
    }

    /// The labeled malicious ASN, when exactly the hijack annotation the
    /// paper uses is present (classified hijacked + at least one ASN).
    pub fn hijacker_asn(&self) -> Option<Asn> {
        if self.has(Category::Hijacked) {
            self.asns.first().copied()
        } else {
            None
        }
    }
}

/// All five sources, loaded and cross-indexed.
pub struct Study {
    /// Analysis configuration.
    pub config: StudyConfig,
    /// Collector peers.
    pub peers: Vec<Peer>,
    /// BGP observation index.
    pub bgp: BgpArchive,
    /// IRR registry.
    pub irr: IrrRegistry,
    /// ROA archive.
    pub roa: RoaArchive,
    /// RIR delegated-stats archive.
    pub rir: RirStatsArchive,
    /// DROP listing timeline.
    pub drop: DropTimeline,
    /// SBL record bodies.
    pub sbl: SblDatabase,
    /// Annotated listing episodes, in listing order.
    pub entries: Vec<StudyEntry>,
    /// Ingestion ledger: per-source quarantine counts and gap-aware
    /// coverage. Empty sources when the study was built in memory via
    /// [`Study::from_world`] (no parsing happened).
    pub ingest: IngestReport,
}

/// Every source's parsed records plus its quarantine ledger — the output
/// of a load stage (text or binary), ready for indexing.
struct LoadedSources {
    updates: Vec<BgpUpdate>,
    bgp_q: Quarantine,
    irr_journal: Vec<JournalEntry>,
    irr_q: Quarantine,
    roa_events: Vec<RoaEvent>,
    rpki_q: Quarantine,
    rir_files: Vec<(Date, Vec<StatsFile>)>,
    rir_q: Quarantine,
    snapshots: Vec<DropSnapshot>,
    drop_q: Quarantine,
    sbl: SblDatabase,
    sbl_q: Quarantine,
}

impl Study {
    /// Build a study directly from a generated world.
    pub fn from_world(world: &World) -> Study {
        let mut config = StudyConfig::new(DateRange::inclusive(
            world.config.study_start,
            world.config.study_end,
        ));
        config.manual_labels = world.manual_labels();

        let index_span = droplens_obs::global().span("index");
        // The five indices are built from disjoint inputs, so they fan out
        // across workers; results land in fixed tuple positions, keeping
        // the study identical at any `DROPLENS_THREADS`.
        let (bgp, irr, roa, rir, drop) = droplens_par::join5(
            || BgpArchive::from_updates(world.peers.clone(), &world.bgp_updates),
            || IrrRegistry::from_journal(&world.irr_journal),
            || RoaArchive::from_events(&world.roa_events),
            || {
                let mut rir = RirStatsArchive::new();
                for (date, files) in &world.rir_snapshots {
                    rir.add_snapshot(*date, files);
                }
                rir
            },
            || DropTimeline::from_snapshots(&world.drop_snapshots),
        );
        index_span.finish();
        let ingest = IngestReport {
            window: Some(config.window),
            ..IngestReport::default()
        };
        Self::assemble(
            config,
            world.peers.clone(),
            bgp,
            irr,
            roa,
            rir,
            drop,
            world.sbl_db.clone(),
            ingest,
        )
    }

    /// Build a study by parsing serialized archives — the same code path
    /// a deployment against the real feeds would use.
    ///
    /// Parsing honors `config.ingest`: in strict mode any malformed line
    /// aborts; in permissive mode malformed records are quarantined
    /// per source and the run fails only when a source blows its error
    /// or gap budget. The resulting ledger (counts, bounded samples,
    /// gap-aware coverage) lands on [`Study::ingest`].
    pub fn from_text(
        config: StudyConfig,
        peers: Vec<Peer>,
        text: &TextArchives,
    ) -> Result<Study, IngestError> {
        let obs = droplens_obs::global();
        let mut load_span = obs.span("load");
        let policy = config.ingest;
        // The five wire formats parse independently (each closure owns one
        // source, its counters commute, and its quarantine ledger is
        // merged in fixed input order), so the load stage fans out while
        // staying deterministic at any worker count.
        let (bgp_res, irr_res, rpki_res, rir_res, drop_res) = droplens_par::join5(
            || {
                let mut q = Quarantine::for_policy("bgp/updates.txt", &policy);
                let updates = bgpfmt::parse_updates_with(&text.bgp_updates, &mut q)?;
                Ok::<_, ParseError>((updates, q))
            },
            || {
                let mut q = Quarantine::for_policy("irr/journal.txt", &policy);
                let entries = journal::parse_journal_with(&text.irr_journal, &mut q)?;
                Ok::<_, ParseError>((entries, q))
            },
            || {
                let mut q = Quarantine::for_policy("rpki/roas.csv", &policy);
                let events = parse_events_with(&text.roa_events, &mut q)?;
                Ok::<_, ParseError>((events, q))
            },
            || {
                let per_snapshot = droplens_par::par_map(&text.rir_snapshots, |(date, files)| {
                    let mut kept = Vec::with_capacity(files.len());
                    let mut merged = Quarantine::for_policy("rir", &policy);
                    for (i, f) in files.iter().enumerate() {
                        let label = match Rir::ALL.get(i) {
                            Some(r) => format!(
                                "rir/{}/delegated-{}-extended.txt",
                                date.compact(),
                                r.token()
                            ),
                            None => format!("rir/{}/file{}", date.compact(), i),
                        };
                        let mut q = Quarantine::for_policy(label, &policy);
                        // `None` = the file was structurally unusable and
                        // quarantined whole; the snapshot keeps the rest.
                        if let Some(file) = parse_stats_file_with(f, &mut q)? {
                            kept.push(file);
                        }
                        merged.absorb(q);
                    }
                    Ok::<_, ParseError>((*date, kept, merged))
                });
                let mut out = Vec::new();
                let mut partial = Vec::new();
                let mut q = Quarantine::for_policy("rir", &policy);
                for (r, (_, raw_files)) in per_snapshot.into_iter().zip(&text.rir_snapshots) {
                    let (date, kept, merged) = r?;
                    // Quarantined rows or a dropped file make the
                    // snapshot untrustworthy about *absent* spans.
                    let damaged = merged.quarantined > 0 || kept.len() < raw_files.len();
                    q.absorb(merged);
                    // A snapshot with every file dropped is a gap, not an
                    // empty registry.
                    if !kept.is_empty() {
                        out.push((date, kept));
                        partial.push(damaged);
                    }
                }
                droplens_rir::format::repair_flickers(&mut out, &partial);
                Ok::<_, ParseError>((out, q))
            },
            || {
                let per_snapshot = droplens_par::par_map(&text.drop_snapshots, |(date, body)| {
                    let mut q = Quarantine::for_policy(format!("drop/{date}.txt"), &policy);
                    let snap = DropSnapshot::parse_with(*date, body, &mut q)?;
                    Ok::<_, ParseError>((snap, q))
                });
                let mut snapshots = Vec::with_capacity(per_snapshot.len());
                let mut partial = Vec::with_capacity(per_snapshot.len());
                let mut q = Quarantine::for_policy("drop", &policy);
                for r in per_snapshot {
                    let (snap, file_q) = r?;
                    // A day that quarantined lines cannot be trusted
                    // about absences; see `repair_flickers`.
                    partial.push(file_q.quarantined > 0);
                    q.absorb(file_q);
                    snapshots.push(snap);
                }
                droplens_drop::repair_flickers(&mut snapshots, &partial);
                let mut sbl_q = Quarantine::for_policy("sbl/records.txt", &policy);
                let sbl = SblDatabase::parse_with(&text.sbl_records, &mut sbl_q)?;
                Ok::<_, ParseError>((snapshots, q, sbl, sbl_q))
            },
        );
        let (updates, bgp_q) = bgp_res?;
        let (irr_journal, irr_q) = irr_res?;
        let (roa_events, rpki_q) = rpki_res?;
        let (rir_files, rir_q) = rir_res?;
        let (snapshots, drop_q, sbl, sbl_q) = drop_res?;
        load_span
            .arg_u64("bgp_updates", updates.len() as u64)
            .arg_u64("irr_entries", irr_journal.len() as u64)
            .arg_u64("roa_events", roa_events.len() as u64)
            .arg_u64("drop_days", snapshots.len() as u64);
        load_span.finish();
        Self::index_and_assemble(
            config,
            peers,
            LoadedSources {
                updates,
                bgp_q,
                irr_journal,
                irr_q,
                roa_events,
                rpki_q,
                rir_files,
                rir_q,
                snapshots,
                drop_q,
                sbl,
                sbl_q,
            },
        )
    }

    /// Build a study from `droplens-bin/1` sidecar archives — the binary
    /// fast path. Loads the very same records as [`Study::from_text`]
    /// (a round-trip equivalence test in this crate proves the resulting
    /// studies are identical), without per-line scanning.
    ///
    /// Quarantine semantics differ only in granularity: a binary sidecar
    /// cannot be resynchronized mid-stream, so damage quarantines the
    /// whole archive rather than one record.
    pub fn from_binary(
        config: StudyConfig,
        peers: Vec<Peer>,
        bin: &BinaryArchives,
    ) -> Result<Study, IngestError> {
        let obs = droplens_obs::global();
        let mut load_span = obs.span("load");
        let policy = config.ingest;
        // Same fan-out shape as `from_text`: five independent sources,
        // fixed tuple positions, deterministic at any worker count.
        let (bgp_res, irr_res, rpki_res, rir_res, drop_res) = droplens_par::join5(
            || {
                let mut q = Quarantine::for_policy("bgp/updates.bin", &policy);
                let updates = bgpfmt::parse_updates_bin_with(&bin.bgp_updates, &mut q)?;
                Ok::<_, ParseError>((updates, q))
            },
            || {
                let mut q = Quarantine::for_policy("irr/journal.bin", &policy);
                let entries = irrbin::parse_journal_bin_with(&bin.irr_journal, &mut q)?;
                Ok::<_, ParseError>((entries, q))
            },
            || {
                let mut q = Quarantine::for_policy("rpki/roas.bin", &policy);
                let events = parse_events_bin_with(&bin.roa_events, &mut q)?;
                Ok::<_, ParseError>((events, q))
            },
            || {
                let per_snapshot = droplens_par::par_map(&bin.rir_snapshots, |(date, files)| {
                    let mut kept = Vec::with_capacity(files.len());
                    let mut merged = Quarantine::for_policy("rir", &policy);
                    for (i, f) in files.iter().enumerate() {
                        let label = match Rir::ALL.get(i) {
                            Some(r) => format!(
                                "rir/{}/delegated-{}-extended.bin",
                                date.compact(),
                                r.token()
                            ),
                            None => format!("rir/{}/file{}", date.compact(), i),
                        };
                        let mut q = Quarantine::for_policy(label, &policy);
                        // `None` = the sidecar was damaged and quarantined
                        // whole; the snapshot keeps the rest.
                        if let Some(file) = parse_stats_file_bin_with(f, &mut q)? {
                            kept.push(file);
                        }
                        merged.absorb(q);
                    }
                    Ok::<_, ParseError>((*date, kept, merged))
                });
                let mut out = Vec::new();
                let mut partial = Vec::new();
                let mut q = Quarantine::for_policy("rir", &policy);
                for (r, (_, raw_files)) in per_snapshot.into_iter().zip(&bin.rir_snapshots) {
                    let (date, kept, merged) = r?;
                    let damaged = merged.quarantined > 0 || kept.len() < raw_files.len();
                    q.absorb(merged);
                    if !kept.is_empty() {
                        out.push((date, kept));
                        partial.push(damaged);
                    }
                }
                droplens_rir::format::repair_flickers(&mut out, &partial);
                Ok::<_, ParseError>((out, q))
            },
            || {
                let per_snapshot = droplens_par::par_map(&bin.drop_snapshots, |(date, body)| {
                    let mut q = Quarantine::for_policy(format!("drop/{date}.bin"), &policy);
                    let snap = dropfmt::parse_snapshot_bin_with(*date, body, &mut q)?;
                    Ok::<_, ParseError>((snap, q))
                });
                let mut snapshots = Vec::with_capacity(per_snapshot.len());
                let mut partial = Vec::with_capacity(per_snapshot.len());
                let mut q = Quarantine::for_policy("drop", &policy);
                for r in per_snapshot {
                    let (snap, file_q) = r?;
                    partial.push(file_q.quarantined > 0);
                    q.absorb(file_q);
                    snapshots.push(snap);
                }
                droplens_drop::repair_flickers(&mut snapshots, &partial);
                let mut sbl_q = Quarantine::for_policy("sbl/records.bin", &policy);
                let sbl = dropfmt::parse_sbl_bin_with(&bin.sbl_records, &mut sbl_q)?;
                Ok::<_, ParseError>((snapshots, q, sbl, sbl_q))
            },
        );
        let (updates, bgp_q) = bgp_res?;
        let (irr_journal, irr_q) = irr_res?;
        let (roa_events, rpki_q) = rpki_res?;
        let (rir_files, rir_q) = rir_res?;
        let (snapshots, drop_q, sbl, sbl_q) = drop_res?;
        load_span
            .arg_u64("bgp_updates", updates.len() as u64)
            .arg_u64("irr_entries", irr_journal.len() as u64)
            .arg_u64("roa_events", roa_events.len() as u64)
            .arg_u64("drop_days", snapshots.len() as u64);
        load_span.finish();
        Self::index_and_assemble(
            config,
            peers,
            LoadedSources {
                updates,
                bgp_q,
                irr_journal,
                irr_q,
                roa_events,
                rpki_q,
                rir_files,
                rir_q,
                snapshots,
                drop_q,
                sbl,
                sbl_q,
            },
        )
    }

    /// The shared back half of [`Study::from_text`] and
    /// [`Study::from_binary`]: build the ingestion ledger, enforce the
    /// policy budgets, index the five sources, and assemble the study.
    fn index_and_assemble(
        config: StudyConfig,
        peers: Vec<Peer>,
        loaded: LoadedSources,
    ) -> Result<Study, IngestError> {
        let obs = droplens_obs::global();
        let policy = config.ingest;
        let LoadedSources {
            updates,
            bgp_q,
            irr_journal,
            irr_q,
            roa_events,
            rpki_q,
            rir_files,
            rir_q,
            snapshots,
            drop_q,
            sbl,
            sbl_q,
        } = loaded;

        // Assemble the pipeline-wide ledger in fixed source order and
        // enforce the budgets before paying for indexing.
        let drop_dates: Vec<Date> = snapshots.iter().map(|s| s.date).collect();
        let rir_dates: Vec<Date> = rir_files.iter().map(|(d, _)| *d).collect();
        let mut report = IngestReport {
            window: Some(config.window),
            ..IngestReport::default()
        };
        let event_cov = |first: Option<Date>, last: Option<Date>, n: usize| {
            SourceCoverage::of_events(first, last, n as u64)
        };
        report.sources.insert(
            "bgp".into(),
            SourceIngest {
                quarantine: bgp_q,
                coverage: event_cov(
                    updates.first().map(|u| u.date),
                    updates.last().map(|u| u.date),
                    updates.len(),
                ),
            },
        );
        report.sources.insert(
            "irr".into(),
            SourceIngest {
                quarantine: irr_q,
                coverage: event_cov(
                    irr_journal.first().map(|e| e.date),
                    irr_journal.last().map(|e| e.date),
                    irr_journal.len(),
                ),
            },
        );
        report.sources.insert(
            "rpki".into(),
            SourceIngest {
                quarantine: rpki_q,
                coverage: event_cov(
                    roa_events.first().map(|e| e.date),
                    roa_events.last().map(|e| e.date),
                    roa_events.len(),
                ),
            },
        );
        report.sources.insert(
            "rir".into(),
            SourceIngest {
                quarantine: rir_q,
                coverage: SourceCoverage::of_snapshots(
                    &rir_dates,
                    RIR_CADENCE_DAYS,
                    &config.window,
                ),
            },
        );
        report.sources.insert(
            "drop".into(),
            SourceIngest {
                quarantine: drop_q,
                coverage: SourceCoverage::of_snapshots(&drop_dates, 1, &config.window),
            },
        );
        report.sources.insert(
            "sbl".into(),
            SourceIngest {
                quarantine: sbl_q,
                coverage: event_cov(None, None, sbl.len()),
            },
        );
        report.enforce(&policy)?;
        for (name, src) in &report.sources {
            obs.counter(&format!("ingest.{name}.quarantined"))
                .add(src.quarantine.quarantined);
            obs.gauge(&format!("ingest.{name}.missing_days"))
                .set(i64::from(src.coverage.missing_days()));
        }

        let bgp_damaged = report
            .sources
            .get("bgp")
            .is_some_and(|s| s.quarantine.quarantined > 0);
        let index_span = obs.span("index");
        let (bgp, irr, roa, rir, drop) = droplens_par::join5(
            || {
                let mut bgp = BgpArchive::from_updates(peers.clone(), &updates);
                // A quarantined withdraw leaves its peer's route open
                // forever; close those zombie lanes by sibling consensus.
                // Gated on actual update damage so an undamaged stream
                // indexes identically under either policy.
                if bgp_damaged {
                    let zombies = bgp.repair_zombie_routes() as u64;
                    droplens_obs::global()
                        .counter("ingest.bgp.zombie_routes_closed")
                        .add(zombies);
                }
                bgp
            },
            || IrrRegistry::from_journal(&irr_journal),
            || RoaArchive::from_events(&roa_events),
            || {
                let mut rir = RirStatsArchive::new();
                for (date, files) in &rir_files {
                    rir.try_add_snapshot(*date, files)?;
                }
                Ok::<_, ParseError>(rir)
            },
            || DropTimeline::try_from_snapshots(&snapshots),
        );
        let (rir, drop) = (rir?, drop?);
        index_span.finish();
        Ok(Self::assemble(
            config, peers, bgp, irr, roa, rir, drop, sbl, report,
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        config: StudyConfig,
        peers: Vec<Peer>,
        bgp: BgpArchive,
        irr: IrrRegistry,
        roa: RoaArchive,
        rir: RirStatsArchive,
        drop: DropTimeline,
        sbl: SblDatabase,
        ingest: IngestReport,
    ) -> Study {
        let obs = droplens_obs::global();
        let mut annotate_span = obs.span("annotate");
        // Entries annotate independently; `par_map` preserves listing order.
        let mut entries: Vec<StudyEntry> =
            droplens_par::par_map(drop.entries(), |e| annotate(e, &sbl, &rir, &config));
        annotate_span.arg_u64("entries", entries.len() as u64);
        annotate_span.finish();
        let correlate_span = obs.span("correlate");
        mark_afrinic_incidents(&mut entries);
        correlate_span.finish();
        obs.counter("study.entries").add(entries.len() as u64);
        Study {
            config,
            peers,
            bgp,
            irr,
            roa,
            rir,
            drop,
            sbl,
            entries,
            ingest,
        }
    }

    /// Entries carrying `cat`, lazily (no intermediate `Vec`).
    pub fn with_category(&self, cat: Category) -> impl Iterator<Item = &StudyEntry> {
        self.entries.iter().filter(move |e| e.has(cat))
    }

    /// Entries excluding the AFRINIC incidents (the paper's default
    /// analysis population), lazily.
    pub fn without_incidents(&self) -> impl Iterator<Item = &StudyEntry> {
        self.entries.iter().filter(|e| !e.afrinic_incident)
    }

    /// Total address space across listed prefixes (each address counted
    /// once).
    pub fn total_listed_space(&self) -> AddressSpace {
        let set: droplens_net::PrefixSet = self.entries.iter().map(|e| e.prefix()).collect();
        set.space()
    }

    /// One day past the end of the study window.
    pub fn horizon(&self) -> Date {
        self.config.window.end()
    }

    /// True when `prefix` (or anything it covers / is covered by) was
    /// announced on `date` — the "routed" predicate used by the Figure 5
    /// accounting. Delegates to the archive's precomputed visibility
    /// index (one binary search per covering-subtree node, no allocation).
    pub fn routed_at(&self, prefix: &Ipv4Prefix, date: Date) -> bool {
        self.bgp.routed_at(prefix, date)
    }
}

fn annotate(
    entry: &DropEntry,
    sbl: &SblDatabase,
    rir: &RirStatsArchive,
    config: &StudyConfig,
) -> StudyEntry {
    let mut categories = BTreeSet::new();
    let mut keyword_hits = 0;
    let mut asns = Vec::new();
    match entry.sbl.and_then(|id| sbl.get(id)) {
        Some(record) => {
            let c = classify(&record.text);
            keyword_hits = c.keyword_hits;
            if c.categories.is_empty() {
                // The semi-automated step: fall back to the analyst's
                // manual read of the record.
                if let Some(manual) = config.manual_labels.get(&record.id) {
                    categories.extend(manual.iter().copied());
                }
            } else {
                categories.extend(c.categories);
            }
            asns = extract_asns(&record.text);
        }
        None => {
            // The record is gone — but the list entry still names its id,
            // and the analyst's labels are keyed by id. A manual label is
            // an independent read of the record, so it survives losing
            // the record text (to SBL churn or to quarantined damage).
            match entry.sbl.and_then(|id| config.manual_labels.get(&id)) {
                Some(manual) if !manual.is_empty() => {
                    categories.extend(manual.iter().copied());
                }
                _ => {
                    categories.insert(Category::NoSblRecord);
                }
            }
        }
    }
    let status = rir.status_of(&entry.prefix, entry.added);
    StudyEntry {
        entry: entry.clone(),
        categories,
        keyword_hits,
        asns,
        rir: status.as_ref().map(|s| s.rir),
        allocated_at_listing: status.as_ref().is_some_and(|s| s.status.is_delegated()),
        org: status.map(|s| s.opaque_id),
        afrinic_incident: false,
    }
}

/// The paper identified the two AFRINIC incidents from reporting; the
/// data-driven equivalent is that incident prefixes are AFRINIC-managed
/// hijack listings sharing a registry org with other hijack listings
/// (ordinary hijack targets have unrelated holders).
fn mark_afrinic_incidents(entries: &mut [StudyEntry]) {
    let mut org_counts: BTreeMap<&str, usize> = BTreeMap::new();
    for e in entries.iter() {
        if e.rir == Some(Rir::Afrinic) && e.has(Category::Hijacked) {
            if let Some(org) = e.org.as_deref() {
                *org_counts.entry(org).or_insert(0) += 1;
            }
        }
    }
    let incident_orgs: BTreeSet<String> = org_counts
        .into_iter()
        .filter(|(_, n)| *n >= 2)
        .map(|(o, _)| o.to_owned())
        .collect();
    for e in entries.iter_mut() {
        if e.rir == Some(Rir::Afrinic)
            && e.has(Category::Hijacked)
            && e.org.as_deref().is_some_and(|o| incident_orgs.contains(o))
        {
            e.afrinic_incident = true;
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code: panics are failures
mod tests {
    use super::*;
    use droplens_synth::WorldConfig;

    fn study() -> Study {
        let world = World::generate(42, &WorldConfig::small());
        Study::from_world(&world)
    }

    #[test]
    fn entry_population_matches_world() {
        let world = World::generate(42, &WorldConfig::small());
        let s = Study::from_world(&world);
        assert_eq!(s.entries.len(), world.truth.listed.len());
    }

    #[test]
    fn nr_entries_have_no_record_category() {
        let s = study();
        let nr: Vec<_> = s.with_category(Category::NoSblRecord).collect();
        assert_eq!(nr.len(), WorldConfig::small().mix.nr);
        for e in nr {
            assert_eq!(e.keyword_hits, 0);
            assert!(e.asns.is_empty());
        }
    }

    #[test]
    fn classification_matches_ground_truth() {
        let world = World::generate(42, &WorldConfig::small());
        let s = Study::from_world(&world);
        for e in &s.entries {
            let truth = world.truth.for_prefix(&e.prefix()).expect("listed");
            if !truth.has_sbl_record {
                assert!(e.has(Category::NoSblRecord), "{}", e.prefix());
                continue;
            }
            for cat in &truth.categories {
                let expected = match cat {
                    droplens_synth::TrueCategory::Hijacked => Category::Hijacked,
                    droplens_synth::TrueCategory::Snowshoe => Category::SnowshoeSpam,
                    droplens_synth::TrueCategory::KnownSpamOp => Category::KnownSpamOperation,
                    droplens_synth::TrueCategory::MaliciousHosting => Category::MaliciousHosting,
                    droplens_synth::TrueCategory::Unallocated => Category::Unallocated,
                };
                assert!(
                    e.has(expected),
                    "{}: missing {expected:?} (got {:?})",
                    e.prefix(),
                    e.categories
                );
            }
        }
    }

    #[test]
    fn unallocated_entries_show_unallocated_in_stats() {
        let s = study();
        for e in s.with_category(Category::Unallocated) {
            assert!(!e.allocated_at_listing, "{} delegated?", e.prefix());
        }
        // And hijacked entries are allocated space.
        for e in s.with_category(Category::Hijacked) {
            assert!(e.allocated_at_listing, "{} not delegated?", e.prefix());
        }
    }

    #[test]
    fn afrinic_incidents_detected() {
        let world = World::generate(42, &WorldConfig::small());
        let s = Study::from_world(&world);
        let flagged: BTreeSet<Ipv4Prefix> = s
            .entries
            .iter()
            .filter(|e| e.afrinic_incident)
            .map(|e| e.prefix())
            .collect();
        let truth: BTreeSet<Ipv4Prefix> = world
            .truth
            .listed
            .iter()
            .filter(|t| t.hijack_kind == Some(droplens_synth::HijackKind::AfrinicIncident))
            .map(|t| t.prefix)
            .collect();
        assert_eq!(flagged, truth);
        assert_eq!(s.without_incidents().count(), s.entries.len() - truth.len());
    }

    #[test]
    fn from_text_equals_from_world() {
        let world = World::generate(42, &WorldConfig::small());
        let direct = Study::from_world(&world);
        let text = world.to_text_archives();
        let mut config = StudyConfig::new(direct.config.window);
        config.manual_labels = world.manual_labels();
        let parsed = Study::from_text(config, world.peers.clone(), &text).expect("parses");
        assert_eq!(parsed.entries.len(), direct.entries.len());
        for (a, b) in parsed.entries.iter().zip(&direct.entries) {
            assert_eq!(a.prefix(), b.prefix());
            assert_eq!(a.categories, b.categories);
            assert_eq!(a.rir, b.rir);
            assert_eq!(a.afrinic_incident, b.afrinic_incident);
        }
    }

    #[test]
    fn from_binary_equals_from_text() {
        let world = World::generate(42, &WorldConfig::small());
        let mut config = StudyConfig::new(DateRange::inclusive(
            world.config.study_start,
            world.config.study_end,
        ));
        config.manual_labels = world.manual_labels();
        let text = world.to_text_archives();
        let bin = world.to_binary_archives();
        let from_text =
            Study::from_text(config.clone(), world.peers.clone(), &text).expect("text parses");
        let from_bin =
            Study::from_binary(config, world.peers.clone(), &bin).expect("binary parses");
        // The two load paths must build the very same study.
        assert_eq!(from_bin.entries, from_text.entries);
        assert_eq!(from_bin.peers, from_text.peers);
        assert_eq!(from_bin.sbl, from_text.sbl);
        assert_eq!(from_bin.drop, from_text.drop);
        assert_eq!(
            from_bin.ingest.total_quarantined(),
            from_text.ingest.total_quarantined()
        );
    }

    #[test]
    fn from_binary_permissive_quarantines_damaged_sidecar() {
        let world = World::generate(42, &WorldConfig::small());
        let mut bin = world.to_binary_archives();
        let n = bin.bgp_updates.len();
        bin.bgp_updates.truncate(n - 4);
        let mut config = StudyConfig::new(DateRange::inclusive(
            world.config.study_start,
            world.config.study_end,
        ));
        config.manual_labels = world.manual_labels();
        // Strict: the damaged sidecar aborts the load.
        assert!(Study::from_binary(config.clone(), world.peers.clone(), &bin).is_err());
        // Permissive: the whole sidecar quarantines (binary archives
        // cannot resync mid-stream) — and losing every BGP update blows
        // the error budget, which is the correct loud failure.
        config.ingest = IngestPolicy::permissive();
        let err = match Study::from_binary(config, world.peers.clone(), &bin) {
            Err(e) => e,
            Ok(_) => panic!("expected budget failure"),
        };
        assert!(err.to_string().contains("bgp"), "{err}");
    }

    #[test]
    fn from_text_builds_ingest_ledger() {
        let world = World::generate(42, &WorldConfig::small());
        let text = world.to_text_archives();
        let mut config = StudyConfig::new(DateRange::inclusive(
            world.config.study_start,
            world.config.study_end,
        ));
        config.manual_labels = world.manual_labels();
        let s = Study::from_text(config, world.peers.clone(), &text).expect("parses");
        // All six sources accounted for, nothing quarantined, full
        // coverage on clean archives.
        for name in ["bgp", "irr", "rpki", "rir", "drop", "sbl"] {
            let src = s.ingest.sources.get(name).expect(name);
            assert_eq!(src.quarantine.quarantined, 0, "{name}");
        }
        assert_eq!(s.ingest.total_quarantined(), 0);
        let drop_cov = &s.ingest.sources["drop"].coverage;
        assert!(drop_cov.gaps.is_empty(), "{:?}", drop_cov.gaps);
        assert_eq!(drop_cov.fraction(&s.config.window), 1.0);
        let rir_cov = &s.ingest.sources["rir"].coverage;
        assert!(rir_cov.gaps.is_empty(), "{:?}", rir_cov.gaps);
    }

    #[test]
    fn permissive_ingest_quarantines_within_budget() {
        let world = World::generate(42, &WorldConfig::small());
        let mut text = world.to_text_archives();
        // One malformed line per line-oriented source: well under 1%.
        text.bgp_updates.push_str("GARBAGE LINE\n");
        text.roa_events.push_str("not,a,roa\n");
        if let Some((_, body)) = text.drop_snapshots.last_mut() {
            body.push_str("999.999.0.0/33 ; SBLx\n");
        }
        let mut config = StudyConfig::new(DateRange::inclusive(
            world.config.study_start,
            world.config.study_end,
        ));
        config.manual_labels = world.manual_labels();
        // Strict: aborts.
        assert!(Study::from_text(config.clone(), world.peers.clone(), &text).is_err());
        // Permissive: quarantined, run proceeds, ledger records it.
        config.ingest = IngestPolicy::permissive();
        let s = Study::from_text(config, world.peers.clone(), &text).expect("within budget");
        assert_eq!(s.ingest.sources["bgp"].quarantine.quarantined, 1);
        assert_eq!(s.ingest.sources["rpki"].quarantine.quarantined, 1);
        assert_eq!(s.ingest.sources["drop"].quarantine.quarantined, 1);
        assert_eq!(s.ingest.total_quarantined(), 3);
        let sample = &s.ingest.sources["bgp"].quarantine.samples[0];
        assert!(sample.location().is_some());
    }

    #[test]
    fn permissive_ingest_fails_fast_over_budget() {
        let world = World::generate(42, &WorldConfig::small());
        let mut text = world.to_text_archives();
        // Corrupt far more than 1% of the (small) SBL database.
        text.sbl_records = format!("NOTANID\nbody\n\n{}", text.sbl_records);
        let mut config = StudyConfig::new(DateRange::inclusive(
            world.config.study_start,
            world.config.study_end,
        ));
        config.ingest = IngestPolicy::Permissive {
            max_error_rate: 0.001,
            max_gap_days: 14,
        };
        let err = match Study::from_text(config, world.peers.clone(), &text) {
            Err(e) => e,
            Ok(_) => panic!("expected budget failure"),
        };
        let msg = err.to_string();
        assert!(msg.contains("error budget"), "{msg}");
        assert!(msg.contains("sbl"), "{msg}");
        assert!(msg.contains("sbl/records.txt:1"), "{msg}");
    }

    #[test]
    fn permissive_ingest_enforces_gap_budget() {
        let world = World::generate(42, &WorldConfig::small());
        let mut text = world.to_text_archives();
        // Drop a 20-day run of daily DROP snapshots from the middle.
        let n = text.drop_snapshots.len();
        assert!(n > 40, "small world has {n} snapshots");
        text.drop_snapshots.drain(n / 2..n / 2 + 20);
        let mut config = StudyConfig::new(DateRange::inclusive(
            world.config.study_start,
            world.config.study_end,
        ));
        config.ingest = IngestPolicy::permissive(); // max_gap_days 14
        let err = match Study::from_text(config.clone(), world.peers.clone(), &text) {
            Err(e) => e,
            Ok(_) => panic!("expected gap failure"),
        };
        assert!(err.to_string().contains("gap budget"), "{err}");
        // A wider budget tolerates the hole and records it as coverage.
        config.ingest = IngestPolicy::Permissive {
            max_error_rate: 0.01,
            max_gap_days: 30,
        };
        let s = Study::from_text(config, world.peers.clone(), &text).expect("gap tolerated");
        let cov = &s.ingest.sources["drop"].coverage;
        assert_eq!(cov.missing_days(), 20);
        assert_eq!(cov.gaps.len(), 1);
        assert!(cov.fraction(&s.config.window) < 1.0);
    }

    #[test]
    fn hijacker_asn_annotation() {
        let world = World::generate(42, &WorldConfig::small());
        let s = Study::from_world(&world);
        // Forged-IRR hijacks must expose their labeled ASN.
        for t in &world.truth.listed {
            if t.forged_irr {
                let e = s
                    .entries
                    .iter()
                    .find(|e| e.prefix() == t.prefix)
                    .expect("entry");
                assert_eq!(e.hijacker_asn(), t.malicious_asn, "{}", t.prefix);
            }
        }
    }

    #[test]
    fn total_listed_space_counts_each_address_once() {
        let s = study();
        let total = s.total_listed_space();
        let naive: AddressSpace = s.entries.iter().map(|e| e.space()).sum();
        assert!(total <= naive);
        assert!(!total.is_zero());
    }
}

//! The study: all five sources loaded, indexed, and annotated.

use std::collections::{BTreeMap, BTreeSet};

use droplens_bgp::{format as bgpfmt, BgpArchive, Peer};
use droplens_drop::{
    classify, extract_asns, Category, DropEntry, DropSnapshot, DropTimeline, SblDatabase, SblId,
};
use droplens_irr::{journal, IrrRegistry};
use droplens_net::{AddressSpace, Asn, Date, DateRange, Ipv4Prefix, ParseError};
use droplens_rir::format::parse_stats_file;
use droplens_rir::{Rir, RirStatsArchive};
use droplens_rpki::format::parse_events;
use droplens_rpki::RoaArchive;
use droplens_synth::{TextArchives, World};

/// Knobs of the analysis itself (not of the data): the study window and
/// the analyst-supplied manual labels for keyword-less SBL records.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// The paper's measurement window (inclusive).
    pub window: DateRange,
    /// Manual labels for SBL records with no Appendix-A keyword.
    pub manual_labels: BTreeMap<SblId, Vec<Category>>,
    /// Days of lookback when inferring withdrawal around a listing
    /// (Figure 2's CDF starts at −1 day).
    pub withdrawal_lookback: i32,
}

impl StudyConfig {
    /// The paper's window with no manual labels.
    pub fn new(window: DateRange) -> StudyConfig {
        StudyConfig {
            window,
            manual_labels: BTreeMap::new(),
            withdrawal_lookback: 1,
        }
    }
}

/// One DROP listing episode, annotated with everything the correlations
/// need: classification, labeled ASNs, allocation status, and the
/// AFRINIC-incident flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StudyEntry {
    /// The raw listing episode.
    pub entry: DropEntry,
    /// Categories (keyword classification, falling back to manual labels;
    /// `NoSblRecord` when the SBL record is gone).
    pub categories: BTreeSet<Category>,
    /// Appendix-A keyword groups that fired on the record.
    pub keyword_hits: usize,
    /// ASNs named in the SBL record ("malicious ASN" annotation).
    pub asns: Vec<Asn>,
    /// Managing RIR on the listing day.
    pub rir: Option<Rir>,
    /// Whether the stats in force on the listing day showed the prefix
    /// delegated.
    pub allocated_at_listing: bool,
    /// Registry org handle on the listing day (groups the AFRINIC
    /// incidents).
    pub org: Option<String>,
    /// Set for the prefixes attributed to the two AFRINIC incidents,
    /// which the paper excludes from most analyses.
    pub afrinic_incident: bool,
}

impl StudyEntry {
    /// The listed prefix.
    pub fn prefix(&self) -> Ipv4Prefix {
        self.entry.prefix
    }

    /// Space covered by the prefix.
    pub fn space(&self) -> AddressSpace {
        AddressSpace::of_prefix(&self.entry.prefix)
    }

    /// True if the entry carries `cat`.
    pub fn has(&self, cat: Category) -> bool {
        self.categories.contains(&cat)
    }

    /// The labeled malicious ASN, when exactly the hijack annotation the
    /// paper uses is present (classified hijacked + at least one ASN).
    pub fn hijacker_asn(&self) -> Option<Asn> {
        if self.has(Category::Hijacked) {
            self.asns.first().copied()
        } else {
            None
        }
    }
}

/// All five sources, loaded and cross-indexed.
pub struct Study {
    /// Analysis configuration.
    pub config: StudyConfig,
    /// Collector peers.
    pub peers: Vec<Peer>,
    /// BGP observation index.
    pub bgp: BgpArchive,
    /// IRR registry.
    pub irr: IrrRegistry,
    /// ROA archive.
    pub roa: RoaArchive,
    /// RIR delegated-stats archive.
    pub rir: RirStatsArchive,
    /// DROP listing timeline.
    pub drop: DropTimeline,
    /// SBL record bodies.
    pub sbl: SblDatabase,
    /// Annotated listing episodes, in listing order.
    pub entries: Vec<StudyEntry>,
}

impl Study {
    /// Build a study directly from a generated world.
    pub fn from_world(world: &World) -> Study {
        let mut config = StudyConfig::new(DateRange::inclusive(
            world.config.study_start,
            world.config.study_end,
        ));
        config.manual_labels = world.manual_labels();

        let index_span = droplens_obs::global().span("index");
        // The five indices are built from disjoint inputs, so they fan out
        // across workers; results land in fixed tuple positions, keeping
        // the study identical at any `DROPLENS_THREADS`.
        let (bgp, irr, roa, rir, drop) = droplens_par::join5(
            || BgpArchive::from_updates(world.peers.clone(), &world.bgp_updates),
            || IrrRegistry::from_journal(&world.irr_journal),
            || RoaArchive::from_events(&world.roa_events),
            || {
                let mut rir = RirStatsArchive::new();
                for (date, files) in &world.rir_snapshots {
                    rir.add_snapshot(*date, files);
                }
                rir
            },
            || DropTimeline::from_snapshots(&world.drop_snapshots),
        );
        index_span.finish();
        Self::assemble(
            config,
            world.peers.clone(),
            bgp,
            irr,
            roa,
            rir,
            drop,
            world.sbl_db.clone(),
        )
    }

    /// Build a study by parsing serialized archives — the same code path
    /// a deployment against the real feeds would use.
    pub fn from_text(
        config: StudyConfig,
        peers: Vec<Peer>,
        text: &TextArchives,
    ) -> Result<Study, ParseError> {
        let obs = droplens_obs::global();
        let load_span = obs.span("load");
        // The five wire formats parse independently (each closure owns one
        // source and its counters commute), so the load stage fans out.
        let (updates, irr_journal, roa_events, rir_files, drop_and_sbl) = droplens_par::join5(
            || bgpfmt::parse_updates(&text.bgp_updates),
            || journal::parse_journal(&text.irr_journal),
            || parse_events(&text.roa_events),
            || {
                droplens_par::par_map(&text.rir_snapshots, |(date, files)| {
                    let parsed: Result<Vec<_>, ParseError> =
                        files.iter().map(|f| parse_stats_file(f)).collect();
                    parsed.map(|p| (*date, p))
                })
                .into_iter()
                .collect::<Result<Vec<_>, ParseError>>()
            },
            || {
                let snapshots = droplens_par::par_map(&text.drop_snapshots, |(date, body)| {
                    DropSnapshot::parse(*date, body)
                })
                .into_iter()
                .collect::<Result<Vec<_>, ParseError>>()?;
                Ok::<_, ParseError>((snapshots, SblDatabase::parse(&text.sbl_records)?))
            },
        );
        let (updates, irr_journal, roa_events, rir_files) =
            (updates?, irr_journal?, roa_events?, rir_files?);
        let (snapshots, sbl) = drop_and_sbl?;
        load_span.finish();

        let index_span = obs.span("index");
        let (bgp, irr, roa, rir, drop) = droplens_par::join5(
            || BgpArchive::from_updates(peers.clone(), &updates),
            || IrrRegistry::from_journal(&irr_journal),
            || RoaArchive::from_events(&roa_events),
            || {
                let mut rir = RirStatsArchive::new();
                for (date, files) in &rir_files {
                    rir.add_snapshot(*date, files);
                }
                rir
            },
            || DropTimeline::from_snapshots(&snapshots),
        );
        index_span.finish();
        Ok(Self::assemble(config, peers, bgp, irr, roa, rir, drop, sbl))
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        config: StudyConfig,
        peers: Vec<Peer>,
        bgp: BgpArchive,
        irr: IrrRegistry,
        roa: RoaArchive,
        rir: RirStatsArchive,
        drop: DropTimeline,
        sbl: SblDatabase,
    ) -> Study {
        let obs = droplens_obs::global();
        let annotate_span = obs.span("annotate");
        // Entries annotate independently; `par_map` preserves listing order.
        let mut entries: Vec<StudyEntry> =
            droplens_par::par_map(drop.entries(), |e| annotate(e, &sbl, &rir, &config));
        annotate_span.finish();
        let correlate_span = obs.span("correlate");
        mark_afrinic_incidents(&mut entries);
        correlate_span.finish();
        obs.counter("study.entries").add(entries.len() as u64);
        Study {
            config,
            peers,
            bgp,
            irr,
            roa,
            rir,
            drop,
            sbl,
            entries,
        }
    }

    /// Entries carrying `cat`, lazily (no intermediate `Vec`).
    pub fn with_category(&self, cat: Category) -> impl Iterator<Item = &StudyEntry> {
        self.entries.iter().filter(move |e| e.has(cat))
    }

    /// Entries excluding the AFRINIC incidents (the paper's default
    /// analysis population), lazily.
    pub fn without_incidents(&self) -> impl Iterator<Item = &StudyEntry> {
        self.entries.iter().filter(|e| !e.afrinic_incident)
    }

    /// Total address space across listed prefixes (each address counted
    /// once).
    pub fn total_listed_space(&self) -> AddressSpace {
        let set: droplens_net::PrefixSet = self.entries.iter().map(|e| e.prefix()).collect();
        set.space()
    }

    /// One day past the end of the study window.
    pub fn horizon(&self) -> Date {
        self.config.window.end()
    }

    /// True when `prefix` (or anything it covers / is covered by) was
    /// announced on `date` — the "routed" predicate used by the Figure 5
    /// accounting. Delegates to the archive's precomputed visibility
    /// index (one binary search per covering-subtree node, no allocation).
    pub fn routed_at(&self, prefix: &Ipv4Prefix, date: Date) -> bool {
        self.bgp.routed_at(prefix, date)
    }
}

fn annotate(
    entry: &DropEntry,
    sbl: &SblDatabase,
    rir: &RirStatsArchive,
    config: &StudyConfig,
) -> StudyEntry {
    let mut categories = BTreeSet::new();
    let mut keyword_hits = 0;
    let mut asns = Vec::new();
    match entry.sbl.and_then(|id| sbl.get(id)) {
        Some(record) => {
            let c = classify(&record.text);
            keyword_hits = c.keyword_hits;
            if c.categories.is_empty() {
                // The semi-automated step: fall back to the analyst's
                // manual read of the record.
                if let Some(manual) = config.manual_labels.get(&record.id) {
                    categories.extend(manual.iter().copied());
                }
            } else {
                categories.extend(c.categories);
            }
            asns = extract_asns(&record.text);
        }
        None => {
            categories.insert(Category::NoSblRecord);
        }
    }
    let status = rir.status_of(&entry.prefix, entry.added);
    StudyEntry {
        entry: entry.clone(),
        categories,
        keyword_hits,
        asns,
        rir: status.as_ref().map(|s| s.rir),
        allocated_at_listing: status.as_ref().is_some_and(|s| s.status.is_delegated()),
        org: status.map(|s| s.opaque_id),
        afrinic_incident: false,
    }
}

/// The paper identified the two AFRINIC incidents from reporting; the
/// data-driven equivalent is that incident prefixes are AFRINIC-managed
/// hijack listings sharing a registry org with other hijack listings
/// (ordinary hijack targets have unrelated holders).
fn mark_afrinic_incidents(entries: &mut [StudyEntry]) {
    let mut org_counts: BTreeMap<&str, usize> = BTreeMap::new();
    for e in entries.iter() {
        if e.rir == Some(Rir::Afrinic) && e.has(Category::Hijacked) {
            if let Some(org) = e.org.as_deref() {
                *org_counts.entry(org).or_insert(0) += 1;
            }
        }
    }
    let incident_orgs: BTreeSet<String> = org_counts
        .into_iter()
        .filter(|(_, n)| *n >= 2)
        .map(|(o, _)| o.to_owned())
        .collect();
    for e in entries.iter_mut() {
        if e.rir == Some(Rir::Afrinic)
            && e.has(Category::Hijacked)
            && e.org.as_deref().is_some_and(|o| incident_orgs.contains(o))
        {
            e.afrinic_incident = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use droplens_synth::WorldConfig;

    fn study() -> Study {
        let world = World::generate(42, &WorldConfig::small());
        Study::from_world(&world)
    }

    #[test]
    fn entry_population_matches_world() {
        let world = World::generate(42, &WorldConfig::small());
        let s = Study::from_world(&world);
        assert_eq!(s.entries.len(), world.truth.listed.len());
    }

    #[test]
    fn nr_entries_have_no_record_category() {
        let s = study();
        let nr: Vec<_> = s.with_category(Category::NoSblRecord).collect();
        assert_eq!(nr.len(), WorldConfig::small().mix.nr);
        for e in nr {
            assert_eq!(e.keyword_hits, 0);
            assert!(e.asns.is_empty());
        }
    }

    #[test]
    fn classification_matches_ground_truth() {
        let world = World::generate(42, &WorldConfig::small());
        let s = Study::from_world(&world);
        for e in &s.entries {
            let truth = world.truth.for_prefix(&e.prefix()).expect("listed");
            if !truth.has_sbl_record {
                assert!(e.has(Category::NoSblRecord), "{}", e.prefix());
                continue;
            }
            for cat in &truth.categories {
                let expected = match cat {
                    droplens_synth::TrueCategory::Hijacked => Category::Hijacked,
                    droplens_synth::TrueCategory::Snowshoe => Category::SnowshoeSpam,
                    droplens_synth::TrueCategory::KnownSpamOp => Category::KnownSpamOperation,
                    droplens_synth::TrueCategory::MaliciousHosting => Category::MaliciousHosting,
                    droplens_synth::TrueCategory::Unallocated => Category::Unallocated,
                };
                assert!(
                    e.has(expected),
                    "{}: missing {expected:?} (got {:?})",
                    e.prefix(),
                    e.categories
                );
            }
        }
    }

    #[test]
    fn unallocated_entries_show_unallocated_in_stats() {
        let s = study();
        for e in s.with_category(Category::Unallocated) {
            assert!(!e.allocated_at_listing, "{} delegated?", e.prefix());
        }
        // And hijacked entries are allocated space.
        for e in s.with_category(Category::Hijacked) {
            assert!(e.allocated_at_listing, "{} not delegated?", e.prefix());
        }
    }

    #[test]
    fn afrinic_incidents_detected() {
        let world = World::generate(42, &WorldConfig::small());
        let s = Study::from_world(&world);
        let flagged: BTreeSet<Ipv4Prefix> = s
            .entries
            .iter()
            .filter(|e| e.afrinic_incident)
            .map(|e| e.prefix())
            .collect();
        let truth: BTreeSet<Ipv4Prefix> = world
            .truth
            .listed
            .iter()
            .filter(|t| t.hijack_kind == Some(droplens_synth::HijackKind::AfrinicIncident))
            .map(|t| t.prefix)
            .collect();
        assert_eq!(flagged, truth);
        assert_eq!(s.without_incidents().count(), s.entries.len() - truth.len());
    }

    #[test]
    fn from_text_equals_from_world() {
        let world = World::generate(42, &WorldConfig::small());
        let direct = Study::from_world(&world);
        let text = world.to_text_archives();
        let mut config = StudyConfig::new(direct.config.window);
        config.manual_labels = world.manual_labels();
        let parsed = Study::from_text(config, world.peers.clone(), &text).expect("parses");
        assert_eq!(parsed.entries.len(), direct.entries.len());
        for (a, b) in parsed.entries.iter().zip(&direct.entries) {
            assert_eq!(a.prefix(), b.prefix());
            assert_eq!(a.categories, b.categories);
            assert_eq!(a.rir, b.rir);
            assert_eq!(a.afrinic_incident, b.afrinic_incident);
        }
    }

    #[test]
    fn hijacker_asn_annotation() {
        let world = World::generate(42, &WorldConfig::small());
        let s = Study::from_world(&world);
        // Forged-IRR hijacks must expose their labeled ASN.
        for t in &world.truth.listed {
            if t.forged_irr {
                let e = s
                    .entries
                    .iter()
                    .find(|e| e.prefix() == t.prefix)
                    .expect("entry");
                assert_eq!(e.hijacker_asn(), t.malicious_asn, "{}", t.prefix);
            }
        }
    }

    #[test]
    fn total_listed_space_counts_each_address_once() {
        let s = study();
        let total = s.total_listed_space();
        let naive: AddressSpace = s.entries.iter().map(|e| e.space()).sum();
        assert!(total <= naive);
        assert!(!total.is_zero());
    }
}

//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `proptest` to this vendored subset (see `[patch.crates-io]`
//! in the workspace manifest). It implements the API surface droplens'
//! property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * [`strategy::Strategy`] with `prop_map`, integer-range and tuple
//!   strategies, [`arbitrary::any`], `Just`,
//! * `prop::collection::{vec, btree_map}`, `prop::option::of`,
//!   `prop::sample::select`, `prop::bool::ANY`,
//! * a character-class regex subset for `&str` strategies
//!   (`"[a-z0-9]{0,30}"`-style patterns).
//!
//! Semantics differ from upstream in one deliberate way: failing cases
//! are reported by ordinary `assert!` panics and are **not shrunk**.
//! Each test function draws its cases from a deterministic RNG, so runs
//! are reproducible.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test-case configuration and the deterministic case RNG.

    /// Subset of `proptest::test_runner::Config`: only the case count.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// Why a test case failed. Case bodies may `return
    /// Err(TestCaseError::fail(..))` instead of panicking.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property does not hold.
        Fail(String),
        /// The case should not count (API parity; treated as a pass).
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given reason.
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(reason.into())
        }

        /// A rejected case with the given reason.
        pub fn reject(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(reason.into())
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            }
        }
    }

    /// Deterministic RNG driving case generation (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator with the fixed default stream.
        pub fn deterministic() -> TestRng {
            TestRng {
                state: 0x9df5_c0de_0b5e_55ed,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the combinators droplens uses.

    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    ///
    /// Upstream strategies produce value *trees* that support shrinking;
    /// this subset samples plain values.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty => $wide:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                    let off = rng.below(span);
                    ((self.start as $wide).wrapping_add(off as $wide)) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range strategy");
                    let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    let off = rng.below(span + 1);
                    ((lo as $wide).wrapping_add(off as $wide)) as $t
                }
            }
        )*};
    }
    int_range_strategy!(
        u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
        i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
    );

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!((A.0)(A.0, B.1)(A.0, B.1, C.2)(A.0, B.1, C.2, D.3)(
        A.0, B.1, C.2, D.3, E.4
    )(A.0, B.1, C.2, D.3, E.4, F.5));

    /// `&str` patterns act as string strategies over a character-class
    /// regex subset: literals, `[a-z0-9_.-]` classes, and `{m,n}` /
    /// `{n}` / `?` / `*` / `+` quantifiers.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            sample_pattern(self, rng)
        }
    }

    fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                let class = expand_class(&chars[i + 1..close]);
                i = close + 1;
                class
            } else if chars[i] == '\\' && i + 1 < chars.len() {
                i += 2;
                vec![chars[i - 1]]
            } else {
                i += 1;
                vec![chars[i - 1]]
            };
            let (lo, hi) = parse_quantifier(&chars, &mut i, pattern);
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
            }
        }
        out
    }

    fn expand_class(body: &[char]) -> Vec<char> {
        let mut set = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                let (a, b) = (body[i], body[i + 2]);
                assert!(a <= b, "bad class range {a}-{b}");
                for c in a..=b {
                    set.push(c);
                }
                i += 3;
            } else {
                set.push(body[i]);
                i += 1;
            }
        }
        assert!(!set.is_empty(), "empty character class");
        set
    }

    fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
        match chars.get(*i) {
            Some('{') => {
                let close = chars[*i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| *i + p)
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
                let body: String = chars[*i + 1..close].iter().collect();
                *i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad {m,n} lower bound"),
                        hi.trim().parse().expect("bad {m,n} upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad {n} count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                *i += 1;
                (0, 1)
            }
            Some('*') => {
                *i += 1;
                (0, 8)
            }
            Some('+') => {
                *i += 1;
                (1, 8)
            }
            _ => (1, 1),
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` for primitives.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T` (full value domain).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod prop {
    //! The `prop::` strategy namespace.

    pub mod bool {
        //! Boolean strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy for both boolean values.
        #[derive(Debug, Clone, Copy)]
        pub struct BoolAny;

        /// Uniform `true`/`false`.
        pub const ANY: BoolAny = BoolAny;

        impl Strategy for BoolAny {
            type Value = bool;
            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use core::ops::Range;
        use std::collections::BTreeMap;

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// `vec(element, m..n)`: vectors of `m..n` elements.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty vec size range");
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.size.end - self.size.start) as u64;
                let len = self.size.start + rng.below(span) as usize;
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// Strategy for `BTreeMap` with an entry count drawn from `size`.
        ///
        /// Duplicate keys collapse, so maps may come out smaller than the
        /// drawn count (upstream retries; the difference is immaterial to
        /// round-trip properties).
        #[derive(Debug, Clone)]
        pub struct BTreeMapStrategy<K, V> {
            key: K,
            value: V,
            size: Range<usize>,
        }

        /// `btree_map(key, value, m..n)`.
        pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
        where
            K: Strategy,
            K::Value: Ord,
            V: Strategy,
        {
            assert!(size.start < size.end, "empty btree_map size range");
            BTreeMapStrategy { key, value, size }
        }

        impl<K, V> Strategy for BTreeMapStrategy<K, V>
        where
            K: Strategy,
            K::Value: Ord,
            V: Strategy,
        {
            type Value = BTreeMap<K::Value, V::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.size.end - self.size.start) as u64;
                let len = self.size.start + rng.below(span) as usize;
                (0..len)
                    .map(|_| (self.key.sample(rng), self.value.sample(rng)))
                    .collect()
            }
        }
    }

    pub mod option {
        //! `Option` strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy for `Option<S::Value>`.
        #[derive(Debug, Clone)]
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// `of(inner)`: `Some` three times out of four.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                if rng.below(4) < 3 {
                    Some(self.inner.sample(rng))
                } else {
                    None
                }
            }
        }
    }

    pub mod sample {
        //! Strategies drawing from fixed collections.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy choosing uniformly from a fixed vector.
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            items: Vec<T>,
        }

        /// `select(items)`: one of `items`, uniformly.
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select on empty collection");
            Select { items }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut TestRng) -> T {
                self.items[rng.below(self.items.len() as u64) as usize].clone()
            }
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests. Each `fn name(pat in strategy, ..) { .. }`
/// becomes a `#[test]` running `cases` sampled inputs (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ($cfg:expr; $($(#[$attr:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic();
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut __rng);)+
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    match __outcome {
                        Ok(()) | Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err(e) => panic!("proptest case {__case} failed: {e}"),
                    }
                }
            }
        )*
    };
}

/// `assert!` under a property-test name (no shrinking on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a property-test name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a property-test name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_map(|n| n * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 5u8..=9, b in -4i32..4, n in any::<u64>()) {
            prop_assert!((5..=9).contains(&a));
            prop_assert!((-4..4).contains(&b));
            let _ = n;
        }

        #[test]
        fn mapped_strategies_apply(v in evens()) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn collections_and_patterns(
            mut xs in prop::collection::vec(0u32..10, 1..6),
            m in prop::collection::btree_map(0u8..50, prop::bool::ANY, 0..8),
            o in prop::option::of(1u32..3),
            s in "[a-c]{2,4}",
            pick in prop::sample::select(vec!["x", "y"]),
        ) {
            xs.sort();
            prop_assert!(!xs.is_empty() && xs.len() < 6);
            prop_assert!(m.len() < 8);
            if let Some(v) = o { prop_assert!((1..3).contains(&v)); }
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            prop_assert_ne!(pick, "z");
        }
    }
}

//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `rand` to this vendored subset (see `[patch.crates-io]` in the
//! workspace manifest). It implements exactly the API surface droplens
//! uses — `StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range,
//! gen_bool}` — over a deterministic xoshiro256** generator seeded via
//! SplitMix64.
//!
//! Determinism contract: identical seeds produce identical streams on
//! every platform, which is all the synthetic-world generator requires.
//! The streams differ from upstream `rand`'s ChaCha12-based `StdRng`, so
//! absolute generated values (not distributions) differ from a build
//! against crates.io.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// A random number generator core: a source of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

/// Seedable generators. Only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value whose full bit range is uniform (ints, bool).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        // 53 uniform mantissa bits, the same construction as gen::<f64>().
        let v = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        v < p
    }

    /// Fill a byte slice (API parity; unused by droplens).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types sampleable uniformly over their whole value range, mirroring
/// `rand::distributions::Standard`.
pub trait Standard {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value can be drawn from, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let offset = uniform_u64(rng, span);
                ((self.start as $wide).wrapping_add(offset as $wide)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let offset = uniform_u64(rng, span + 1);
                ((lo as $wide).wrapping_add(offset as $wide)) as $t
            }
        }
    )*};
}
impl_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty float range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Uniform draw in `[0, bound)` by widening multiply (Lemire reduction
/// without the rejection step — bias is < 2^-32 for droplens' spans).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** seeded via SplitMix64.
    ///
    /// Not the upstream ChaCha12 implementation, but deterministic,
    /// fast, and of more than sufficient quality for synthetic-world
    /// generation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, per Vigna's reference seeding advice.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let v = rng.gen_range(3i32..=7);
            assert!((3..=7).contains(&v));
            let f = rng.gen_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
            let u: u8 = rng.gen_range(0u8..=255);
            let _ = u;
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((27_000..33_000).contains(&hits), "hits={hits}");
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn negative_int_ranges() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(-20_000i32..40_000);
            assert!((-20_000..40_000).contains(&v));
        }
    }
}

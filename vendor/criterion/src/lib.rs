//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `criterion` to this vendored subset (see `[patch.crates-io]`
//! in the workspace manifest). It keeps the repo's `cargo bench` targets
//! compiling and producing useful plain-text timings: each benchmark
//! routine is warmed up once, then timed over enough iterations to fill
//! a small measurement budget, and the mean time per iteration is
//! printed. There is no statistical analysis, HTML report, or history.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a value or the work producing it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark, reported alongside timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes, in decimal multiples (API parity).
    BytesDecimal(u64),
}

/// How `iter_batched` amortizes setup; ignored by this subset.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Times one benchmark routine.
pub struct Bencher<'a> {
    budget: Duration,
    result: &'a mut Option<Sample>,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    mean: Duration,
    iters: u64,
}

impl Bencher<'_> {
    /// Time `routine`, called repeatedly until the measurement budget is
    /// spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up pass, also sizes the first measurement batch.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));

        let mut iters: u64 = 0;
        let mut spent = Duration::ZERO;
        let start = Instant::now();
        while spent < self.budget && iters < 1_000_000 {
            black_box(routine());
            iters += 1;
            spent = start.elapsed();
        }
        let mean = if iters > 0 {
            spent / iters as u32
        } else {
            once
        };
        *self.result = Some(Sample { mean, iters });
    }

    /// Time `routine` over inputs built by `setup` (setup excluded from
    /// the measurement as closely as a single-pass harness allows).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut iters: u64 = 0;
        let mut spent = Duration::ZERO;
        while spent < self.budget && iters < 1_000_000 {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            spent += t.elapsed();
            iters += 1;
        }
        let mean = if iters > 0 {
            spent / iters as u32
        } else {
            Duration::ZERO
        };
        *self.result = Some(Sample { mean, iters });
    }
}

fn run_one(prefix: &str, id: &str, budget: Duration, throughput: Option<Throughput>) -> RunOne {
    RunOne {
        name: if prefix.is_empty() {
            id.to_owned()
        } else {
            format!("{prefix}/{id}")
        },
        budget,
        throughput,
    }
}

struct RunOne {
    name: String,
    budget: Duration,
    throughput: Option<Throughput>,
}

impl RunOne {
    fn execute<F: FnMut(&mut Bencher)>(self, mut f: F) {
        let mut result = None;
        let mut b = Bencher {
            budget: self.budget,
            result: &mut result,
        };
        f(&mut b);
        match result {
            Some(s) => {
                let mut line = format!(
                    "{:<50} time: {:>12?}  ({} iters)",
                    self.name, s.mean, s.iters
                );
                if let Some(t) = self.throughput {
                    let per_sec = |n: u64| n as f64 / s.mean.as_secs_f64();
                    match t {
                        Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
                            line.push_str(&format!(
                                "  thrpt: {:.1} MiB/s",
                                per_sec(n) / (1024.0 * 1024.0)
                            ));
                        }
                        Throughput::Elements(n) => {
                            line.push_str(&format!("  thrpt: {:.0} elem/s", per_sec(n)));
                        }
                    }
                }
                println!("{line}");
            }
            None => println!("{:<50} (no measurement)", self.name),
        }
    }
}

/// The benchmark manager: entry point of every bench target.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Configure from CLI args (accepted and ignored; filters and
    /// criterion flags have no effect in this subset).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one("", id, self.budget, None).execute(f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_owned(),
            budget: Duration::from_millis(300),
            throughput: None,
        }
    }

    /// Final summary hook (no-op).
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    budget: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the nominal sample count (folded into the time budget here).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the measurement time; this subset caps it at one second to
    /// keep `cargo bench` quick.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.budget = t.min(Duration::from_secs(1));
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&self.name, id, self.budget, self.throughput).execute(f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
